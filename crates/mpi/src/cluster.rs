//! Launching a virtual cluster: one thread per rank.

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use crossbeam::channel::unbounded;

use crate::comm::Comm;
use crate::message::Message;
use crate::model::LinkModel;
use crate::stats::{CommStats, ModelClock};
use crate::topology::Topology;
use crate::transport::{AbortHandle, ChannelTransport, TransportError};

/// Everything a cluster run produces: per-rank outputs, traffic ledgers and
/// logical clocks (indexed by rank).
#[derive(Debug)]
pub struct ClusterResult<R> {
    /// Per-rank return values of the rank function.
    pub outputs: Vec<R>,
    /// Per-rank traffic ledgers.
    pub stats: Vec<CommStats>,
    /// Per-rank logical clocks at exit.
    pub clocks: Vec<ModelClock>,
}

impl<R> ClusterResult<R> {
    /// Cluster-wide merged traffic ledger.
    pub fn total_stats(&self) -> CommStats {
        let mut total = CommStats::default();
        for s in &self.stats {
            total.merge(s);
        }
        total
    }

    /// The slowest rank's logical time — the modeled wall time of the run.
    pub fn modeled_wall_time(&self) -> f64 {
        self.clocks.iter().map(|c| c.now()).fold(0.0, f64::max)
    }

    /// Maximum modeled communication fraction over ranks, as reported in the
    /// "% comm" columns of the paper's Tables 3 and 7.
    pub fn modeled_comm_fraction(&self) -> f64 {
        self.clocks
            .iter()
            .map(|c| {
                let t = c.now();
                if t > 0.0 {
                    c.comm_secs() / t
                } else {
                    0.0
                }
            })
            .fold(0.0, f64::max)
    }
}

/// Typed failure of a cluster run: the first rank whose function failed.
///
/// Raised instead of a deadlock: when one rank panics, the shared
/// [`AbortHandle`] wakes every peer blocked in a receive, the secondary
/// `Aborted` failures are filtered out, and the originating rank's failure
/// is reported. `claire-grid` converts this into `ClaireError::RankFailed`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterError {
    /// The rank that failed first.
    pub rank: usize,
    /// Description of the failure (panic message or transport error).
    pub detail: String,
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "rank {} failed: {}", self.rank, self.detail)
    }
}

impl std::error::Error for ClusterError {}

fn describe_panic(payload: &(dyn Any + Send)) -> String {
    if let Some(e) = payload.downcast_ref::<TransportError>() {
        e.to_string()
    } else if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "rank panicked".to_string()
    }
}

/// A failure that only happened because some other rank failed first.
fn is_secondary(payload: &(dyn Any + Send)) -> bool {
    matches!(payload.downcast_ref::<TransportError>(), Some(TransportError::Aborted { .. }))
}

/// Run `f` on every rank of a virtual cluster with the default link model.
///
/// Blocks until all ranks return. Rank functions communicate through the
/// [`Comm`] handle they receive. See the crate-level example. Panics if any
/// rank fails; use [`try_run_cluster`] for a typed error instead.
pub fn run_cluster<R, F>(topo: Topology, f: F) -> ClusterResult<R>
where
    R: Send,
    F: Fn(&mut Comm) -> R + Sync,
{
    run_cluster_with_link(topo, LinkModel::default(), f)
}

/// [`run_cluster`] with an explicit link model (for calibration studies).
pub fn run_cluster_with_link<R, F>(topo: Topology, link: LinkModel, f: F) -> ClusterResult<R>
where
    R: Send,
    F: Fn(&mut Comm) -> R + Sync,
{
    match try_run_cluster_with_link(topo, link, f) {
        Ok(res) => res,
        Err(e) => panic!("{e}"),
    }
}

/// Fallible cluster run: one dead rank aborts the others and surfaces as a
/// typed [`ClusterError`] instead of a hang or an opaque join panic.
pub fn try_run_cluster<R, F>(topo: Topology, f: F) -> Result<ClusterResult<R>, ClusterError>
where
    R: Send,
    F: Fn(&mut Comm) -> R + Sync,
{
    try_run_cluster_with_link(topo, LinkModel::default(), f)
}

/// [`try_run_cluster`] with an explicit link model.
pub fn try_run_cluster_with_link<R, F>(
    topo: Topology,
    link: LinkModel,
    f: F,
) -> Result<ClusterResult<R>, ClusterError>
where
    R: Send,
    F: Fn(&mut Comm) -> R + Sync,
{
    let p = topo.nranks;
    let mut txs = Vec::with_capacity(p);
    let mut rxs = Vec::with_capacity(p);
    for _ in 0..p {
        let (tx, rx) = unbounded::<Message>();
        txs.push(tx);
        rxs.push(rx);
    }
    let abort = Arc::new(AbortHandle::new());

    type RankOutcome<R> = Result<(R, CommStats, ModelClock), Box<dyn Any + Send>>;
    let mut results: Vec<Option<RankOutcome<R>>> = (0..p).map(|_| None).collect();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(p);
        for (rank, rx) in rxs.into_iter().enumerate() {
            let senders = txs.clone();
            let abort = Arc::clone(&abort);
            let f = &f;
            handles.push(scope.spawn(move || {
                let transport =
                    ChannelTransport::new(rank, topo, senders, rx, Some(Arc::clone(&abort)));
                let mut comm = Comm::from_transport(Box::new(transport), link);
                match catch_unwind(AssertUnwindSafe(|| f(&mut comm))) {
                    Ok(out) => {
                        let (stats, clock) = comm.take_results();
                        Ok((out, stats, clock))
                    }
                    Err(payload) => {
                        // wake the peers this rank will never answer; the
                        // first failure's description wins
                        if !is_secondary(payload.as_ref()) {
                            abort.abort(describe_panic(payload.as_ref()));
                        }
                        Err(payload)
                    }
                }
            }));
        }
        drop(txs);
        for (rank, h) in handles.into_iter().enumerate() {
            // rank functions are fully caught above; a join error would mean
            // a panic in the harness itself, so propagate that one
            results[rank] = Some(h.join().expect("cluster harness panicked"));
        }
    });

    // pick the primary failure: the lowest-ranked non-secondary panic (a
    // rank that only died because the cluster was already aborting is noise)
    let mut primary: Option<ClusterError> = None;
    let mut fallback: Option<ClusterError> = None;
    for (rank, r) in results.iter().enumerate() {
        if let Some(Err(payload)) = r {
            let e = ClusterError { rank, detail: describe_panic(payload.as_ref()) };
            if is_secondary(payload.as_ref()) {
                fallback.get_or_insert(e);
            } else if primary.is_none() {
                primary = Some(e);
            }
        }
    }
    if let Some(e) = primary.or(fallback) {
        return Err(e);
    }

    let mut outputs = Vec::with_capacity(p);
    let mut stats = Vec::with_capacity(p);
    let mut clocks = Vec::with_capacity(p);
    for r in results {
        let (o, s, c) = r.expect("rank result missing").unwrap_or_else(|_| unreachable!());
        outputs.push(o);
        stats.push(s);
        clocks.push(c);
    }
    Ok(ClusterResult { outputs, stats, clocks })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::CommCat;
    use std::time::{Duration, Instant};

    #[test]
    fn outputs_indexed_by_rank() {
        let res = run_cluster(Topology::new(5, 4), |comm| comm.rank() * comm.rank());
        assert_eq!(res.outputs, vec![0, 1, 4, 9, 16]);
    }

    #[test]
    fn total_stats_accumulate() {
        let res = run_cluster(Topology::new(2, 4), |comm| {
            let peer = 1 - comm.rank();
            let got: Vec<u8> = comm.sendrecv(peer, peer, 3, CommCat::Ghost, &[0u8; 100]);
            got.len()
        });
        assert_eq!(res.outputs, vec![100, 100]);
        let total = res.total_stats();
        assert_eq!(total.cat(CommCat::Ghost).bytes_sent, 200);
        assert_eq!(total.cat(CommCat::Ghost).msgs_sent, 2);
    }

    #[test]
    fn modeled_wall_time_is_max() {
        let res = run_cluster(Topology::new(3, 4), |comm| {
            comm.advance_compute((comm.rank() + 1) as f64);
        });
        assert!((res.modeled_wall_time() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn single_rank_cluster_matches_solo() {
        let res = run_cluster(Topology::solo(), |comm| {
            assert!(comm.is_solo());
            comm.allreduce_sum_scalar(5.0)
        });
        assert_eq!(res.outputs, vec![5.0]);
    }

    #[test]
    fn dead_rank_aborts_blocked_peers_with_typed_error() {
        // rank 2 dies while every other rank is blocked in a receive that
        // will never be answered: the run must fail promptly with the
        // originating rank's message, not deadlock or report a secondary
        // abort
        let t0 = Instant::now();
        let err = try_run_cluster(Topology::new(4, 4), |comm| {
            if comm.rank() == 2 {
                panic!("simulated rank failure");
            }
            let _: Vec<u8> = comm.recv(2, 77, CommCat::Other);
        })
        .unwrap_err();
        assert_eq!(err.rank, 2);
        assert!(err.detail.contains("simulated rank failure"), "detail: {}", err.detail);
        assert!(t0.elapsed() < Duration::from_secs(10), "abort should be prompt");
    }

    #[test]
    fn run_cluster_panics_with_failed_rank_message() {
        let caught = std::panic::catch_unwind(|| {
            run_cluster(Topology::new(2, 4), |comm| {
                if comm.rank() == 1 {
                    panic!("boom");
                }
                comm.barrier();
            });
        })
        .unwrap_err();
        let msg = caught
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| caught.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default();
        assert!(msg.contains("rank 1 failed"), "panic message: {msg}");
        assert!(msg.contains("boom"), "panic message: {msg}");
    }
}
