//! Launching a virtual cluster: one thread per rank.

use std::sync::Arc;

use crossbeam::channel::unbounded;

use crate::comm::{BarrierState, Comm};
use crate::message::Message;
use crate::model::LinkModel;
use crate::stats::{CommStats, ModelClock};
use crate::topology::Topology;

/// Everything a cluster run produces: per-rank outputs, traffic ledgers and
/// logical clocks (indexed by rank).
#[derive(Debug)]
pub struct ClusterResult<R> {
    /// Per-rank return values of the rank function.
    pub outputs: Vec<R>,
    /// Per-rank traffic ledgers.
    pub stats: Vec<CommStats>,
    /// Per-rank logical clocks at exit.
    pub clocks: Vec<ModelClock>,
}

impl<R> ClusterResult<R> {
    /// Cluster-wide merged traffic ledger.
    pub fn total_stats(&self) -> CommStats {
        let mut total = CommStats::default();
        for s in &self.stats {
            total.merge(s);
        }
        total
    }

    /// The slowest rank's logical time — the modeled wall time of the run.
    pub fn modeled_wall_time(&self) -> f64 {
        self.clocks.iter().map(|c| c.now()).fold(0.0, f64::max)
    }

    /// Maximum modeled communication fraction over ranks, as reported in the
    /// "% comm" columns of the paper's Tables 3 and 7.
    pub fn modeled_comm_fraction(&self) -> f64 {
        self.clocks
            .iter()
            .map(|c| {
                let t = c.now();
                if t > 0.0 {
                    c.comm_secs() / t
                } else {
                    0.0
                }
            })
            .fold(0.0, f64::max)
    }
}

/// Run `f` on every rank of a virtual cluster with the default link model.
///
/// Blocks until all ranks return. Rank functions communicate through the
/// [`Comm`] handle they receive. See the crate-level example.
pub fn run_cluster<R, F>(topo: Topology, f: F) -> ClusterResult<R>
where
    R: Send,
    F: Fn(&mut Comm) -> R + Sync,
{
    run_cluster_with_link(topo, LinkModel::default(), f)
}

/// [`run_cluster`] with an explicit link model (for calibration studies).
pub fn run_cluster_with_link<R, F>(topo: Topology, link: LinkModel, f: F) -> ClusterResult<R>
where
    R: Send,
    F: Fn(&mut Comm) -> R + Sync,
{
    let p = topo.nranks;
    let mut txs = Vec::with_capacity(p);
    let mut rxs = Vec::with_capacity(p);
    for _ in 0..p {
        let (tx, rx) = unbounded::<Message>();
        txs.push(tx);
        rxs.push(rx);
    }
    let barrier = Arc::new(BarrierState::new(p));

    let mut results: Vec<Option<(R, CommStats, ModelClock)>> = (0..p).map(|_| None).collect();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(p);
        for (rank, rx) in rxs.into_iter().enumerate() {
            let senders = txs.clone();
            let barrier = Arc::clone(&barrier);
            let f = &f;
            handles.push(scope.spawn(move || {
                let mut comm = Comm::new(rank, topo, senders, rx, link, barrier);
                let out = f(&mut comm);
                let (stats, clock) = comm.take_results();
                (out, stats, clock)
            }));
        }
        drop(txs);
        for (rank, h) in handles.into_iter().enumerate() {
            results[rank] = Some(h.join().expect("rank thread panicked"));
        }
    });

    let mut outputs = Vec::with_capacity(p);
    let mut stats = Vec::with_capacity(p);
    let mut clocks = Vec::with_capacity(p);
    for r in results {
        let (o, s, c) = r.expect("rank result missing");
        outputs.push(o);
        stats.push(s);
        clocks.push(c);
    }
    ClusterResult { outputs, stats, clocks }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::CommCat;

    #[test]
    fn outputs_indexed_by_rank() {
        let res = run_cluster(Topology::new(5, 4), |comm| comm.rank() * comm.rank());
        assert_eq!(res.outputs, vec![0, 1, 4, 9, 16]);
    }

    #[test]
    fn total_stats_accumulate() {
        let res = run_cluster(Topology::new(2, 4), |comm| {
            let peer = 1 - comm.rank();
            let got: Vec<u8> = comm.sendrecv(peer, peer, 3, CommCat::Ghost, &[0u8; 100]);
            got.len()
        });
        assert_eq!(res.outputs, vec![100, 100]);
        let total = res.total_stats();
        assert_eq!(total.cat(CommCat::Ghost).bytes_sent, 200);
        assert_eq!(total.cat(CommCat::Ghost).msgs_sent, 2);
    }

    #[test]
    fn modeled_wall_time_is_max() {
        let res = run_cluster(Topology::new(3, 4), |comm| {
            comm.advance_compute((comm.rank() + 1) as f64);
        });
        assert!((res.modeled_wall_time() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn single_rank_cluster_matches_solo() {
        let res = run_cluster(Topology::solo(), |comm| {
            assert!(comm.is_solo());
            comm.allreduce_sum_scalar(5.0)
        });
        assert_eq!(res.outputs, vec![5.0]);
    }
}
