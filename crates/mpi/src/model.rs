//! Calibrated α–β communication model of the paper's test system.
//!
//! The paper's machine is TACC Longhorn: 4 NVIDIA V100 per node connected by
//! NVLink, nodes connected by InfiniBand, IBM Spectrum MPI 10.3. Its Table 4
//! measures the sustained bidirectional all-to-all bandwidth of (a) the
//! vendor `MPI_Alltoall` and (b) the authors' own asynchronous peer-to-peer
//! scheme, and motivates the 512 kB switch between them. Since this
//! reproduction runs on a host without GPUs or a fabric, those link
//! characteristics are *modeled* here and calibrated against Table 4; the
//! logical clock of [`crate::stats::ModelClock`] consumes this model.
//!
//! Calibration anchors (from Table 4, GB/s per rank, large volumes):
//! * P2P intra-node (4 ranks, NVLink): ≈ 36
//! * P2P 2 nodes: ≈ 10, 4 nodes: ≈ 6, ≥8 nodes: ≈ 4.3–4.7
//! * P2P small per-pair volumes (< 512 kB): collapses to < 2 (latency bound)
//! * vendor MPI: 5–6.7 at 4 ranks decaying to ≈ 1.5–3 at 128 ranks, only
//!   mildly dependent on message size.

use crate::topology::Topology;

/// Which all-to-all implementation to model/use (paper §3.3).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AlltoallMethod {
    /// Emulation of the vendor `MPI_Alltoallv` (IBM Spectrum MPI), which the
    /// paper found to be poorly optimized for direct GPU communication.
    VendorMpi,
    /// The paper's asynchronous peer-to-peer scheme with GPU-direct routes.
    PeerToPeer,
    /// The paper's production setting: P2P within a node or when the
    /// per-pair volume exceeds 512 kB, vendor MPI otherwise.
    Auto,
}

/// The per-pair volume (bytes) above which the paper switches to P2P.
pub const P2P_SWITCH_BYTES: usize = 512 * 1024;

impl AlltoallMethod {
    /// Resolve `Auto` into a concrete method for a given exchange.
    pub fn resolve(self, per_pair_bytes: usize, topo: &Topology) -> AlltoallMethod {
        match self {
            AlltoallMethod::Auto => {
                if topo.nnodes() == 1 || per_pair_bytes >= P2P_SWITCH_BYTES {
                    AlltoallMethod::PeerToPeer
                } else {
                    AlltoallMethod::VendorMpi
                }
            }
            m => m,
        }
    }
}

/// Roofline model of one device (virtual GPU), used by kernels to advance
/// the modeled compute clock.
///
/// The paper's roofline analysis (via [14]) found both the IP and FD kernels
/// DRAM-bandwidth-bound on the V100, so modeled kernel time is
/// `bytes_moved / dram_bw` with a flop-rate cap for compute-heavy kernels.
#[derive(Clone, Copy, Debug)]
pub struct DeviceModel {
    /// Sustained DRAM bandwidth, bytes/s (V100 HBM2: ~900 GB/s).
    pub dram_bw: f64,
    /// Sustained FP32 throughput, flop/s (V100: ~14 Tflop/s peak, ~7 sustained).
    pub flops: f64,
    /// Kernel launch overhead per kernel invocation, seconds.
    pub launch_overhead: f64,
}

impl Default for DeviceModel {
    fn default() -> Self {
        Self { dram_bw: 780.0e9, flops: 7.0e12, launch_overhead: 5.0e-6 }
    }
}

impl DeviceModel {
    /// Time of a DRAM-bound kernel moving `bytes` and executing `flops`.
    pub fn kernel_time(&self, bytes: usize, flops: usize) -> f64 {
        self.launch_overhead + (bytes as f64 / self.dram_bw).max(flops as f64 / self.flops)
    }
}

/// α–β model of the cluster interconnect, used by the logical clock.
#[derive(Clone, Copy, Debug)]
pub struct LinkModel {
    /// Message startup latency within a node (NVLink P2P), seconds.
    pub lat_intra: f64,
    /// Message startup latency across nodes (InfiniBand), seconds.
    pub lat_inter: f64,
    /// Per-rank NVLink bandwidth within a node, bytes/s.
    pub bw_intra: f64,
    /// Base per-rank inter-node bandwidth for a 2-node exchange, bytes/s.
    pub bw_inter_2node: f64,
    /// Asymptotic per-rank inter-node bandwidth for many nodes, bytes/s.
    pub bw_inter_floor: f64,
    /// Vendor-MPI effective all-to-all bandwidth at 4 ranks, bytes/s.
    pub mpi_bw_base: f64,
    /// Per-doubling decay factor of the vendor MPI bandwidth.
    pub mpi_decay: f64,
}

impl Default for LinkModel {
    /// Longhorn-calibrated defaults (see module docs).
    fn default() -> Self {
        Self {
            lat_intra: 4.0e-6,
            lat_inter: 2.5e-5,
            bw_intra: 36.0e9,
            bw_inter_2node: 10.0e9,
            bw_inter_floor: 4.3e9,
            mpi_bw_base: 6.2e9,
            mpi_decay: 0.82,
        }
    }
}

impl LinkModel {
    /// Time for one point-to-point message of `bytes` over the given link.
    pub fn msg_time(&self, bytes: usize, intra_node: bool) -> f64 {
        let (lat, bw) = if intra_node {
            (self.lat_intra, self.bw_intra)
        } else {
            (self.lat_inter, self.inter_bw(2))
        };
        lat + bytes as f64 / bw
    }

    /// Per-rank inter-node P2P bandwidth as a function of node count.
    ///
    /// Fitted to Table 4: ~10 GB/s at 2 nodes decaying towards a floor of
    /// ~4.3 GB/s when many nodes contend for the fabric.
    pub fn inter_bw(&self, nnodes: usize) -> f64 {
        let n = nnodes.max(2) as f64;
        self.bw_inter_floor + (self.bw_inter_2node - self.bw_inter_floor) * 2.0 / n
    }

    /// Vendor-MPI effective all-to-all bandwidth per rank.
    ///
    /// Decays geometrically per rank-count doubling beyond 4 ranks and
    /// degrades mildly for small per-rank volumes (pinned buffers / staging
    /// overheads dominate), matching Table 4's MPI rows.
    pub fn mpi_alltoall_bw(&self, per_rank_bytes: usize, nranks: usize) -> f64 {
        let doublings = ((nranks.max(4) as f64) / 4.0).log2();
        let base = self.mpi_bw_base * self.mpi_decay.powf(doublings);
        // size saturation: half-speed point at 256 kB per rank
        let sat = per_rank_bytes as f64 / (per_rank_bytes as f64 + 256.0 * 1024.0);
        base * sat.max(0.05)
    }

    /// Modeled wall time of an all-to-all-v exchange where every rank sends
    /// `per_rank_bytes` in total (split evenly over the other ranks).
    ///
    /// Returns the time a participant is busy; the logical clock applies it
    /// after synchronizing all participants.
    pub fn alltoall_time(
        &self,
        per_rank_bytes: usize,
        topo: &Topology,
        method: AlltoallMethod,
    ) -> f64 {
        let p = topo.nranks;
        if p <= 1 {
            return 0.0;
        }
        let per_pair = per_rank_bytes / p;
        match method.resolve(per_pair, topo) {
            AlltoallMethod::PeerToPeer => {
                // p-1 asynchronous pairwise exchanges; intra-node pairs ride
                // NVLink, inter-node pairs share the fabric. Latency is paid
                // per message (this is what collapses small-volume P2P).
                let gpn = topo.gpus_per_node.min(p);
                let intra_peers = gpn.saturating_sub(1);
                let inter_peers = p - 1 - intra_peers;
                let t_intra = intra_peers as f64 * self.lat_intra
                    + (intra_peers * per_pair) as f64 / self.bw_intra;
                let bw_inter = self.inter_bw(topo.nnodes());
                let t_inter = inter_peers as f64 * self.lat_inter
                    + (inter_peers * per_pair) as f64 / bw_inter;
                // NVLink and IB transfers overlap; startup costs serialize.
                t_intra.max(t_inter) + 0.3 * t_intra.min(t_inter)
            }
            AlltoallMethod::VendorMpi => {
                per_rank_bytes as f64 / self.mpi_alltoall_bw(per_rank_bytes, p)
            }
            AlltoallMethod::Auto => unreachable!("resolve() removed Auto"),
        }
    }

    /// Sustained "bidirectional bandwidth" figure as reported in Table 4:
    /// bytes actually shipped off-rank divided by exchange time.
    pub fn alltoall_bandwidth(
        &self,
        per_rank_bytes: usize,
        topo: &Topology,
        method: AlltoallMethod,
    ) -> f64 {
        let t = self.alltoall_time(per_rank_bytes, topo, method);
        let p = topo.nranks as f64;
        let shipped = per_rank_bytes as f64 * (p - 1.0) / p;
        if t <= 0.0 {
            f64::INFINITY
        } else {
            shipped / t
        }
    }

    /// Modeled time of a binomial-tree reduction/broadcast of `bytes`.
    pub fn tree_time(&self, bytes: usize, topo: &Topology) -> f64 {
        let p = topo.nranks;
        if p <= 1 {
            return 0.0;
        }
        let stages = (p as f64).log2().ceil();
        let intra = topo.nnodes() == 1;
        stages * self.msg_time(bytes, intra)
    }

    /// Modeled barrier time (latency-only tree).
    pub fn barrier_time(&self, topo: &Topology) -> f64 {
        self.tree_time(0, topo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gib(b: f64) -> f64 {
        b / 1e9
    }

    #[test]
    fn p2p_intra_node_is_fast() {
        let m = LinkModel::default();
        let topo = Topology::new(4, 4);
        // 256^3 single-precision complex slab, as in Table 4 row 1
        let per_rank = 8 * 256 * 256 * 129 / 4;
        let bw = m.alltoall_bandwidth(per_rank, &topo, AlltoallMethod::PeerToPeer);
        assert!(gib(bw) > 20.0, "intra-node P2P should approach NVLink: {}", gib(bw));
        let bw_mpi = m.alltoall_bandwidth(per_rank, &topo, AlltoallMethod::VendorMpi);
        assert!(bw > 3.0 * bw_mpi, "P2P should beat vendor MPI on-node");
    }

    #[test]
    fn p2p_collapses_for_small_pair_volumes() {
        let m = LinkModel::default();
        let topo = Topology::new(64, 4);
        // 256^3 over 64 ranks: per-pair volume ~ 16 kB << 512 kB
        let per_rank = 8 * 256 * 256 * 129 / 64;
        let p2p = m.alltoall_bandwidth(per_rank, &topo, AlltoallMethod::PeerToPeer);
        let mpi = m.alltoall_bandwidth(per_rank, &topo, AlltoallMethod::VendorMpi);
        assert!(p2p < mpi, "latency-bound P2P must lose: p2p={} mpi={}", gib(p2p), gib(mpi));
    }

    #[test]
    fn auto_switch_matches_paper_rule() {
        let topo = Topology::new(8, 4);
        assert_eq!(AlltoallMethod::Auto.resolve(600 * 1024, &topo), AlltoallMethod::PeerToPeer);
        assert_eq!(AlltoallMethod::Auto.resolve(100 * 1024, &topo), AlltoallMethod::VendorMpi);
        let one_node = Topology::new(4, 4);
        assert_eq!(
            AlltoallMethod::Auto.resolve(1, &one_node),
            AlltoallMethod::PeerToPeer,
            "single node always uses NVLink P2P"
        );
    }

    #[test]
    fn solo_comm_is_free() {
        let m = LinkModel::default();
        let topo = Topology::solo();
        assert_eq!(m.alltoall_time(123456, &topo, AlltoallMethod::Auto), 0.0);
        assert_eq!(m.barrier_time(&topo), 0.0);
    }
}
