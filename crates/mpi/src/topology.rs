//! Cluster topology: how virtual ranks map onto virtual nodes.
//!
//! On TACC Longhorn (the paper's system) each node hosts four V100 GPUs and
//! CLAIRE uses one MPI rank per GPU. Whether two ranks share a node decides
//! which link their traffic uses: NVLink peer-to-peer inside a node versus
//! InfiniBand between nodes — the distinction behind the paper's Table 4.

/// Shape of the virtual cluster.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Topology {
    /// Total number of ranks (one rank per virtual GPU, as in the paper).
    pub nranks: usize,
    /// Ranks (GPUs) per node; Longhorn has 4.
    pub gpus_per_node: usize,
}

impl Topology {
    /// Create a topology with `nranks` ranks and `gpus_per_node` ranks per node.
    ///
    /// # Panics
    ///
    /// Panics if either argument is zero.
    pub fn new(nranks: usize, gpus_per_node: usize) -> Self {
        assert!(nranks > 0, "topology needs at least one rank");
        assert!(gpus_per_node > 0, "topology needs at least one GPU per node");
        Self { nranks, gpus_per_node }
    }

    /// Single-rank topology (serial execution).
    pub fn solo() -> Self {
        Self::new(1, 1)
    }

    /// Longhorn-style topology: 4 GPUs per node, as in the paper's runs.
    pub fn longhorn(nranks: usize) -> Self {
        Self::new(nranks, 4)
    }

    /// Node index hosting `rank`.
    pub fn node_of(&self, rank: usize) -> usize {
        rank / self.gpus_per_node
    }

    /// Number of nodes (ceiling division).
    pub fn nnodes(&self) -> usize {
        self.nranks.div_ceil(self.gpus_per_node)
    }

    /// Whether two ranks share a node (and thus the intra-node link).
    pub fn same_node(&self, a: usize, b: usize) -> bool {
        self.node_of(a) == self.node_of(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn longhorn_node_mapping() {
        let t = Topology::longhorn(32);
        assert_eq!(t.nnodes(), 8);
        assert!(t.same_node(0, 3));
        assert!(!t.same_node(3, 4));
        assert_eq!(t.node_of(31), 7);
    }

    #[test]
    fn solo_is_single_node() {
        let t = Topology::solo();
        assert_eq!(t.nnodes(), 1);
        assert!(t.same_node(0, 0));
    }

    #[test]
    fn partial_last_node() {
        let t = Topology::new(6, 4);
        assert_eq!(t.nnodes(), 2);
        assert!(t.same_node(4, 5));
        assert!(!t.same_node(3, 4));
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_panics() {
        Topology::new(0, 4);
    }
}
