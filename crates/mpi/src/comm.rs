//! The per-rank communicator handle.

// Collectives loop over rank ids and skip self; explicit indices match
// the MPI-style pseudocode they implement.
#![allow(clippy::needless_range_loop)]

use std::time::Instant;

use bytes::Bytes;

use crate::message::Message;
use crate::model::{AlltoallMethod, DeviceModel, LinkModel};
use crate::pod::{as_bytes, from_bytes, Pod};
use crate::stats::{CollOp, CommCat, CommStats, ModelClock};
use crate::topology::Topology;
use crate::transport::{ChannelTransport, Transport};

/// Reserved control tags (top of the tag space). User tags must stay below
/// `u64::MAX - 15`; the collectives and the barrier rendezvous own the rest.
const TAG_BAR_UP: u64 = u64::MAX - 10;
const TAG_BAR_DOWN: u64 = u64::MAX - 11;

/// MPI-like communicator for one virtual rank.
///
/// Created by [`crate::run_cluster`] (one per rank thread), by
/// [`Comm::solo`] for serial execution, or by [`Comm::from_transport`] over
/// any [`Transport`] — including the multi-process socket transport in
/// `claire-ipc`. All collective operations must be called by every rank of
/// the cluster, in the same order — exactly the MPI contract the paper's
/// CLAIRE code relies on.
///
/// Every collective is implemented over tagged point-to-point messages in a
/// fixed deterministic rank order (reductions fold contributions in rank
/// order at rank 0), so results are bitwise identical across transports.
pub struct Comm {
    rank: usize,
    topo: Topology,
    transport: Box<dyn Transport>,
    pending: Vec<Message>,
    stats: CommStats,
    clock: ModelClock,
    link: LinkModel,
    device: DeviceModel,
}

impl Comm {
    /// Wrap a bootstrapped transport in a communicator.
    ///
    /// This is the seam multi-process execution plugs into: `claire-ipc`
    /// hands a `SocketTransport` here and every kernel built on [`Comm`]
    /// runs unchanged across process boundaries.
    pub fn from_transport(transport: Box<dyn Transport>, link: LinkModel) -> Self {
        Self {
            rank: transport.rank(),
            topo: *transport.topo(),
            transport,
            pending: Vec::new(),
            stats: CommStats::default(),
            clock: ModelClock::default(),
            link,
            device: DeviceModel::default(),
        }
    }

    /// A single-rank communicator for serial execution (no threads).
    ///
    /// Self-sends work: they are queued and matched by the next receive.
    pub fn solo() -> Self {
        Comm::from_transport(Box::new(ChannelTransport::solo()), LinkModel::default())
    }

    /// This rank's id in `0..size()`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the cluster.
    pub fn size(&self) -> usize {
        self.topo.nranks
    }

    /// True iff this is a single-rank communicator.
    pub fn is_solo(&self) -> bool {
        self.size() == 1
    }

    /// The cluster topology.
    pub fn topo(&self) -> &Topology {
        &self.topo
    }

    /// The link model used by the logical clock.
    pub fn link(&self) -> &LinkModel {
        &self.link
    }

    /// The device (virtual GPU) roofline model.
    pub fn device(&self) -> &DeviceModel {
        &self.device
    }

    /// Replace the device model (calibration studies).
    pub fn set_device(&mut self, device: DeviceModel) {
        self.device = device;
    }

    /// Which transport carries this rank's messages (`"channel"`,
    /// `"socket"`, ...); recorded in RunReport.
    pub fn transport_kind(&self) -> &'static str {
        self.transport.kind()
    }

    /// Advance the modeled clock by the roofline time of a kernel that
    /// moved `bytes` through DRAM and executed `flops`.
    pub fn advance_kernel(&mut self, bytes: usize, flops: usize) {
        let t = self.device.kernel_time(bytes, flops);
        self.clock.advance_compute(t);
    }

    /// Traffic ledger of this rank.
    pub fn stats(&self) -> &CommStats {
        &self.stats
    }

    /// Logical clock of this rank.
    pub fn clock(&self) -> &ModelClock {
        &self.clock
    }

    /// Advance the logical clock by modeled compute seconds (roofline cost
    /// of a kernel that just ran).
    pub fn advance_compute(&mut self, secs: f64) {
        self.clock.advance_compute(secs);
    }

    /// Consume the communicator, yielding its ledgers (cluster runners
    /// collect these per rank).
    pub fn take_results(self) -> (CommStats, ModelClock) {
        (self.stats, self.clock)
    }

    // ----- point to point -------------------------------------------------

    /// Send a typed slice to `dst` with `tag`. Non-blocking (buffered).
    pub fn send<T: Pod>(&mut self, dst: usize, tag: u64, cat: CommCat, data: &[T]) {
        self.stats.record_coll(CollOp::P2p, std::mem::size_of_val(data) as u64);
        self.send_impl(dst, tag, cat, data, false);
    }

    fn send_impl<T: Pod>(
        &mut self,
        dst: usize,
        tag: u64,
        cat: CommCat,
        data: &[T],
        link_free: bool,
    ) {
        let payload = Bytes::copy_from_slice(as_bytes(data));
        let nbytes = payload.len() as u64;
        let msg =
            Message { src: self.rank, tag, cat, sent_clock: self.clock.now(), link_free, payload };
        let wire = self.transport.send(dst, msg).unwrap_or_else(|e| std::panic::panic_any(e));
        let c = self.stats.cat_mut(cat);
        c.bytes_sent += nbytes;
        c.msgs_sent += 1;
        c.wire_bytes += wire;
    }

    /// Control-plane send (barrier rendezvous): bypasses the message/byte
    /// ledger so the logical traffic accounting is identical across
    /// transports, but still attributes real wire bytes to `Reduce`.
    fn send_raw(&mut self, dst: usize, tag: u64, data: &[f64]) {
        let msg = Message {
            src: self.rank,
            tag,
            cat: CommCat::Reduce,
            sent_clock: self.clock.now(),
            link_free: true,
            payload: Bytes::copy_from_slice(as_bytes(data)),
        };
        let wire = self.transport.send(dst, msg).unwrap_or_else(|e| std::panic::panic_any(e));
        self.stats.cat_mut(CommCat::Reduce).wire_bytes += wire;
    }

    /// Blocking receive of a typed slice from `src` with `tag`.
    ///
    /// Matches `(src, tag)` in FIFO order; other messages arriving in the
    /// meantime are buffered.
    pub fn recv<T: Pod>(&mut self, src: usize, tag: u64, cat: CommCat) -> Vec<T> {
        let msg = self.recv_msg(src, tag, cat);
        // logical timing: the transfer completes at sender clock + link time
        if msg.link_free {
            self.clock.sync_to(msg.sent_clock);
        } else {
            let t = self.link.msg_time(msg.payload.len(), self.topo.same_node(self.rank, msg.src));
            self.clock.sync_to(msg.sent_clock + t);
            self.stats.cat_mut(cat).modeled_secs += t;
        }
        from_bytes(&msg.payload)
    }

    fn recv_match(&mut self, src: usize, tag: u64) -> Message {
        if let Some(pos) = self.pending.iter().position(|m| m.src == src && m.tag == tag) {
            return self.pending.remove(pos);
        }
        loop {
            let msg = self.transport.recv().unwrap_or_else(|e| std::panic::panic_any(e));
            if msg.src == src && msg.tag == tag {
                return msg;
            }
            self.pending.push(msg);
        }
    }

    fn recv_msg(&mut self, src: usize, tag: u64, cat: CommCat) -> Message {
        if let Some(pos) = self.pending.iter().position(|m| m.src == src && m.tag == tag) {
            return self.pending.remove(pos);
        }
        let t0 = Instant::now();
        let msg = self.recv_match(src, tag);
        self.stats.cat_mut(cat).wall_blocked += t0.elapsed();
        msg
    }

    /// Combined send to `dst` and receive from `src` (safe pairwise exchange).
    pub fn sendrecv<T: Pod>(
        &mut self,
        dst: usize,
        src: usize,
        tag: u64,
        cat: CommCat,
        data: &[T],
    ) -> Vec<T> {
        self.send(dst, tag, cat, data);
        self.recv(src, tag, cat)
    }

    // ----- collectives ----------------------------------------------------

    /// Rendezvous of all logical clocks through the transport: every rank
    /// learns the maximum entry clock. Rank 0 collects entry times in rank
    /// order and releases peers with the maximum — a true barrier (nobody
    /// proceeds before everybody arrived), built on the same point-to-point
    /// surface as everything else so it works across processes.
    fn clock_rendezvous(&mut self) -> f64 {
        if self.rank == 0 {
            let mut max = self.clock.now();
            for src in 1..self.size() {
                let msg = self.recv_match(src, TAG_BAR_UP);
                let t = from_bytes::<f64>(&msg.payload)[0];
                if t > max {
                    max = t;
                }
            }
            for dst in 1..self.size() {
                self.send_raw(dst, TAG_BAR_DOWN, &[max]);
            }
            max
        } else {
            let now = self.clock.now();
            self.send_raw(0, TAG_BAR_UP, &[now]);
            let msg = self.recv_match(0, TAG_BAR_DOWN);
            from_bytes::<f64>(&msg.payload)[0]
        }
    }

    /// Barrier: all ranks wait; logical clocks synchronize to the maximum.
    pub fn barrier(&mut self) {
        self.stats.record_coll(CollOp::Barrier, 0);
        if self.is_solo() {
            return;
        }
        let t0 = Instant::now();
        let max = self.clock_rendezvous();
        self.clock.sync_to(max);
        let bt = self.link.barrier_time(&self.topo);
        self.clock.advance_comm(bt);
        let c = self.stats.cat_mut(CommCat::Reduce);
        c.wall_blocked += t0.elapsed();
        c.modeled_secs += bt;
    }

    /// All-reduce with a user-provided elementwise combiner.
    ///
    /// Implemented as gather-to-root + broadcast over the message layer;
    /// modeled cost is a binomial tree (charged once, messages are
    /// link-free).
    pub fn allreduce<T: Pod, F: Fn(&mut [T], &[T])>(&mut self, data: &mut [T], op: F) {
        self.stats.record_coll(CollOp::Allreduce, std::mem::size_of_val(data) as u64);
        if self.is_solo() {
            return;
        }
        const TAG_UP: u64 = u64::MAX - 1;
        const TAG_DOWN: u64 = u64::MAX - 2;
        if self.rank == 0 {
            for src in 1..self.size() {
                let contrib: Vec<T> = self.recv_link_free(src, TAG_UP);
                assert_eq!(contrib.len(), data.len(), "allreduce length mismatch");
                op(data, &contrib);
            }
            for dst in 1..self.size() {
                self.send_impl(dst, TAG_DOWN, CommCat::Reduce, data, true);
            }
        } else {
            self.send_impl(0, TAG_UP, CommCat::Reduce, data, true);
            let result: Vec<T> = self.recv_link_free(0, TAG_DOWN);
            data.copy_from_slice(&result);
        }
        // collective-level modeled cost: two tree sweeps
        let bytes = std::mem::size_of_val(data);
        let t = 2.0 * self.link.tree_time(bytes, &self.topo);
        self.clock.advance_comm(t);
        self.stats.cat_mut(CommCat::Reduce).modeled_secs += t;
        self.barrier_clock_sync();
    }

    fn recv_link_free<T: Pod>(&mut self, src: usize, tag: u64) -> Vec<T> {
        let msg = self.recv_msg(src, tag, CommCat::Reduce);
        self.clock.sync_to(msg.sent_clock);
        from_bytes(&msg.payload)
    }

    /// Clock-only synchronization (no wait semantics beyond the messages
    /// already exchanged); used to make collectives leave all ranks at the
    /// same logical time, like a blocking MPI collective.
    fn barrier_clock_sync(&mut self) {
        let max = self.clock_rendezvous();
        self.clock.sync_to(max);
    }

    /// Sum-all-reduce for `f64` slices.
    pub fn allreduce_sum(&mut self, data: &mut [f64]) {
        self.allreduce(data, |acc, x| {
            for (a, b) in acc.iter_mut().zip(x) {
                *a += *b;
            }
        });
    }

    /// Scalar sum-all-reduce.
    pub fn allreduce_sum_scalar(&mut self, x: f64) -> f64 {
        let mut buf = [x];
        self.allreduce_sum(&mut buf);
        buf[0]
    }

    /// Scalar max-all-reduce.
    pub fn allreduce_max_scalar(&mut self, x: f64) -> f64 {
        let mut buf = [x];
        self.allreduce(&mut buf, |acc, v| {
            if v[0] > acc[0] {
                acc[0] = v[0];
            }
        });
        buf[0]
    }

    /// Broadcast `data` from `root` to all ranks.
    pub fn broadcast<T: Pod>(&mut self, root: usize, data: &mut Vec<T>) {
        self.stats.record_coll(CollOp::Broadcast, std::mem::size_of_val(data.as_slice()) as u64);
        if self.is_solo() {
            return;
        }
        const TAG_BCAST: u64 = u64::MAX - 3;
        if self.rank == root {
            for dst in 0..self.size() {
                if dst != root {
                    self.send_impl(dst, TAG_BCAST, CommCat::Reduce, data, true);
                }
            }
        } else {
            *data = self.recv_link_free(root, TAG_BCAST);
        }
        let bytes = data.len() * std::mem::size_of::<T>();
        let t = self.link.tree_time(bytes, &self.topo);
        self.clock.advance_comm(t);
        self.stats.cat_mut(CommCat::Reduce).modeled_secs += t;
        self.barrier_clock_sync();
    }

    /// Gather variable-length contributions to `root`.
    ///
    /// Returns `Some(parts)` (indexed by rank) on `root`, `None` elsewhere.
    pub fn gatherv<T: Pod>(
        &mut self,
        root: usize,
        data: &[T],
        cat: CommCat,
    ) -> Option<Vec<Vec<T>>> {
        if self.is_solo() {
            self.stats.record_coll(CollOp::Gatherv, 0);
            return Some(vec![data.to_vec()]);
        }
        const TAG_GATHER: u64 = u64::MAX - 4;
        if self.rank == root {
            self.stats.record_coll(CollOp::Gatherv, 0);
            let mut parts: Vec<Vec<T>> = Vec::with_capacity(self.size());
            for src in 0..self.size() {
                if src == root {
                    parts.push(data.to_vec());
                } else {
                    parts.push(self.recv(src, TAG_GATHER, cat));
                }
            }
            Some(parts)
        } else {
            self.stats.record_coll(CollOp::Gatherv, std::mem::size_of_val(data) as u64);
            self.send_impl(root, TAG_GATHER, cat, data, false);
            None
        }
    }

    /// Scatter variable-length parts from `root`; returns this rank's part.
    pub fn scatterv<T: Pod>(
        &mut self,
        root: usize,
        parts: Option<&[Vec<T>]>,
        cat: CommCat,
    ) -> Vec<T> {
        if self.is_solo() {
            self.stats.record_coll(CollOp::Scatterv, 0);
            return parts.expect("root must provide parts")[0].clone();
        }
        const TAG_SCATTER: u64 = u64::MAX - 5;
        if self.rank == root {
            let parts = parts.expect("root must provide parts");
            assert_eq!(parts.len(), self.size(), "scatterv needs one part per rank");
            let sent: usize = parts
                .iter()
                .enumerate()
                .filter(|(d, _)| *d != root)
                .map(|(_, p)| std::mem::size_of_val(p.as_slice()))
                .sum();
            self.stats.record_coll(CollOp::Scatterv, sent as u64);
            for (dst, part) in parts.iter().enumerate() {
                if dst != root {
                    self.send_impl(dst, TAG_SCATTER, cat, part, false);
                }
            }
            parts[root].clone()
        } else {
            self.stats.record_coll(CollOp::Scatterv, 0);
            self.recv(root, TAG_SCATTER, cat)
        }
    }

    /// All-to-all-v: rank `r` sends `bufs[d]` to rank `d`; returns the
    /// received parts indexed by source rank.
    ///
    /// The paper's distributed FFT transpose is built on this. Both
    /// communication paths of §3.3 are supported: the vendor `MPI_Alltoallv`
    /// emulation and the asynchronous peer-to-peer scheme, switched at a
    /// 512 kB per-pair volume by [`AlltoallMethod::Auto`]. Functionally the
    /// paths are identical; they differ in the modeled cost.
    pub fn alltoallv<T: Pod>(
        &mut self,
        bufs: &[Vec<T>],
        cat: CommCat,
        method: AlltoallMethod,
    ) -> Vec<Vec<T>> {
        assert_eq!(bufs.len(), self.size(), "alltoallv needs one buffer per rank");
        const TAG_A2A: u64 = u64::MAX - 6;
        // post all sends (asynchronous, like the paper's P2P scheme)
        for dst in 0..self.size() {
            if dst != self.rank {
                self.send_impl(dst, TAG_A2A, cat, &bufs[dst], true);
            }
        }
        let mut out: Vec<Vec<T>> = Vec::with_capacity(self.size());
        for src in 0..self.size() {
            if src == self.rank {
                out.push(bufs[src].clone());
            } else {
                let msg = self.recv_msg(src, TAG_A2A, cat);
                self.clock.sync_to(msg.sent_clock);
                out.push(from_bytes(&msg.payload));
            }
        }
        // collective-level modeled cost
        let per_rank_bytes: usize = bufs
            .iter()
            .enumerate()
            .filter(|(d, _)| *d != self.rank)
            .map(|(_, b)| std::mem::size_of_val(b.as_slice()))
            .sum();
        self.stats.record_coll(CollOp::Alltoallv, per_rank_bytes as u64);
        let t = self.link.alltoall_time(per_rank_bytes, &self.topo, method);
        self.clock.advance_comm(t);
        self.stats.cat_mut(cat).modeled_secs += t;
        if !self.is_solo() {
            self.barrier_clock_sync();
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::run_cluster;

    #[test]
    fn solo_self_send() {
        let mut c = Comm::solo();
        c.send(0, 1, CommCat::Other, &[1.0f64, 2.0]);
        let got: Vec<f64> = c.recv(0, 1, CommCat::Other);
        assert_eq!(got, vec![1.0, 2.0]);
        assert_eq!(c.stats().cat(CommCat::Other).msgs_sent, 1);
        assert_eq!(c.transport_kind(), "channel");
    }

    #[test]
    fn tag_matching_out_of_order() {
        let mut c = Comm::solo();
        c.send(0, 1, CommCat::Other, &[1u32]);
        c.send(0, 2, CommCat::Other, &[2u32]);
        let second: Vec<u32> = c.recv(0, 2, CommCat::Other);
        let first: Vec<u32> = c.recv(0, 1, CommCat::Other);
        assert_eq!((first[0], second[0]), (1, 2));
    }

    #[test]
    fn allreduce_sum_across_ranks() {
        let topo = Topology::new(4, 2);
        let res = run_cluster(topo, |comm| {
            let mut v = vec![comm.rank() as f64, 1.0];
            comm.allreduce_sum(&mut v);
            v
        });
        for out in &res.outputs {
            assert_eq!(out, &vec![6.0, 4.0]);
        }
    }

    #[test]
    fn allreduce_max() {
        let topo = Topology::new(3, 4);
        let res = run_cluster(topo, |comm| comm.allreduce_max_scalar(comm.rank() as f64));
        assert!(res.outputs.iter().all(|&x| x == 2.0));
    }

    #[test]
    fn broadcast_from_root() {
        let topo = Topology::new(3, 4);
        let res = run_cluster(topo, |comm| {
            let mut v = if comm.rank() == 1 { vec![42u64, 7] } else { vec![] };
            comm.broadcast(1, &mut v);
            v
        });
        assert!(res.outputs.iter().all(|v| v == &vec![42, 7]));
    }

    #[test]
    fn gatherv_and_scatterv_roundtrip() {
        let topo = Topology::new(4, 4);
        let res = run_cluster(topo, |comm| {
            let mine = vec![comm.rank() as u32; comm.rank() + 1];
            let parts = comm.gatherv(0, &mine, CommCat::FieldRedist);
            let back = comm.scatterv(0, parts.as_deref(), CommCat::FieldRedist);
            back == mine
        });
        assert!(res.outputs.iter().all(|&ok| ok));
    }

    #[test]
    fn alltoallv_permutation() {
        let topo = Topology::new(4, 4);
        let res = run_cluster(topo, |comm| {
            let bufs: Vec<Vec<u64>> =
                (0..comm.size()).map(|d| vec![(comm.rank() * 10 + d) as u64]).collect();
            comm.alltoallv(&bufs, CommCat::FftTranspose, AlltoallMethod::Auto)
        });
        for (r, out) in res.outputs.iter().enumerate() {
            for (s, part) in out.iter().enumerate() {
                assert_eq!(part, &vec![(s * 10 + r) as u64]);
            }
        }
    }

    #[test]
    fn barrier_synchronizes_clocks() {
        let topo = Topology::new(4, 4);
        let res = run_cluster(topo, |comm| {
            comm.advance_compute(comm.rank() as f64);
            comm.barrier();
            comm.clock().now()
        });
        let max = res.outputs.iter().cloned().fold(0.0, f64::max);
        for &t in &res.outputs {
            assert!(t >= 3.0, "all clocks should reach the slowest rank: {t} vs {max}");
        }
    }

    #[test]
    fn barrier_control_traffic_stays_off_the_ledger() {
        // the rendezvous messages that implement barrier() are control
        // plane: they must not show up as logical bytes/messages, or the
        // ledger would differ between transports and from MPI semantics
        let res = run_cluster(Topology::new(3, 4), |comm| {
            comm.barrier();
            comm.barrier();
            (
                comm.stats().cat(CommCat::Reduce).bytes_sent,
                comm.stats().cat(CommCat::Reduce).msgs_sent,
            )
        });
        for &(bytes, msgs) in &res.outputs {
            assert_eq!((bytes, msgs), (0, 0));
        }
    }

    #[test]
    fn modeled_clock_orders_pipeline() {
        // rank 0 computes 1s then sends; rank 1 must end past 1s.
        let topo = Topology::new(2, 4);
        let res = run_cluster(topo, |comm| {
            if comm.rank() == 0 {
                comm.advance_compute(1.0);
                comm.send(1, 9, CommCat::Ghost, &[0u8; 1024]);
                comm.clock().now()
            } else {
                let _: Vec<u8> = comm.recv(0, 9, CommCat::Ghost);
                comm.clock().now()
            }
        });
        assert!(res.outputs[1] > 1.0);
        assert!(res.outputs[1] > res.outputs[0]);
    }
}
