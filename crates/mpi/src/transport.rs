//! Pluggable rank-to-rank message transports.
//!
//! [`Comm`](crate::Comm) implements every collective in terms of tagged
//! point-to-point messages, so the entire communication layer is generic
//! over one small surface: [`Transport`]. Two implementations exist:
//!
//! * [`ChannelTransport`] — the in-process default. Ranks are threads and
//!   messages travel through crossbeam channels; nothing crosses a wire, so
//!   `send` reports 0 wire bytes. This is the zero-cost path used by
//!   [`crate::run_cluster`] and [`Comm::solo`](crate::Comm::solo).
//! * `SocketTransport` (in the `claire-ipc` crate) — true multi-process
//!   execution over Unix-domain sockets with length-framed binary messages;
//!   `send` reports the real bytes-on-wire (frame header + payload).
//!
//! Because the collectives live in `Comm` and reduce in a fixed
//! deterministic rank order, swapping the transport changes *how* bytes
//! move but not a single bit of any collective's result.
//!
//! # Failure model
//!
//! Transports report failures as [`TransportError`] values; `Comm` converts
//! them into panics carrying the typed error (via `std::panic::panic_any`),
//! which [`crate::try_run_cluster`] catches and turns into a
//! [`ClusterError`](crate::cluster::ClusterError). An [`AbortHandle`] shared
//! by all ranks of a cluster lets the first failure wake peers blocked in
//! `recv`, so one dead rank cannot strand the others.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crossbeam::channel::{Receiver, RecvTimeoutError, Sender};

use crate::message::Message;
use crate::topology::Topology;

/// How often a blocked receive re-checks the cluster abort flag.
const ABORT_POLL: Duration = Duration::from_millis(2);

/// A transport-level failure.
///
/// Carried as a panic payload through `Comm` so rank functions do not need
/// `Result` plumbing; cluster runners downcast it back to a typed error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportError {
    /// A specific peer went away (its process died or its socket broke).
    PeerLost {
        /// Rank of the lost peer.
        peer: usize,
        /// Human-readable failure description.
        detail: String,
    },
    /// The cluster was aborted because another rank failed first.
    Aborted {
        /// Description of the originating failure.
        detail: String,
    },
    /// An I/O error not attributable to a single peer.
    Io {
        /// Human-readable failure description.
        detail: String,
    },
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::PeerLost { peer, detail } => {
                write!(f, "lost peer rank {peer}: {detail}")
            }
            TransportError::Aborted { detail } => write!(f, "cluster aborted: {detail}"),
            TransportError::Io { detail } => write!(f, "transport i/o error: {detail}"),
        }
    }
}

impl std::error::Error for TransportError {}

/// Cluster-wide failure flag shared by all ranks of one run.
///
/// The first failing rank publishes its failure description; peers blocked
/// in `recv` observe the flag within one [`ABORT_POLL`] interval and fail
/// with [`TransportError::Aborted`] instead of waiting forever.
#[derive(Debug, Default)]
pub struct AbortHandle {
    flag: AtomicBool,
    detail: Mutex<Option<String>>,
}

impl AbortHandle {
    /// New, un-aborted handle.
    pub fn new() -> Self {
        Self::default()
    }

    /// Mark the cluster aborted. The first caller's detail wins.
    pub fn abort(&self, detail: String) {
        let mut d = self.detail.lock().unwrap();
        if d.is_none() {
            *d = Some(detail);
        }
        drop(d);
        self.flag.store(true, Ordering::SeqCst);
    }

    /// Has any rank failed?
    pub fn is_aborted(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }

    /// The first failure's description, if any.
    pub fn detail(&self) -> Option<String> {
        self.detail.lock().unwrap().clone()
    }
}

/// The primitive surface `Comm` is built on: tagged point-to-point message
/// passing between the ranks of one cluster.
///
/// `Send` is a supertrait so a boxed transport can move into rank threads.
pub trait Transport: Send {
    /// This rank's id in `0..topo().nranks`.
    fn rank(&self) -> usize;

    /// The cluster topology agreed at bootstrap.
    fn topo(&self) -> &Topology;

    /// Short identifier for reports: `"channel"` or `"socket"`.
    fn kind(&self) -> &'static str;

    /// Deliver `msg` to rank `dst`. Non-blocking (buffered).
    ///
    /// Returns the number of bytes that crossed a real wire — 0 for
    /// in-process delivery, frame header + payload for sockets — so the
    /// traffic ledger can report honest bytes-on-wire per transport.
    fn send(&mut self, dst: usize, msg: Message) -> Result<u64, TransportError>;

    /// Block until the next message addressed to this rank arrives.
    ///
    /// Ordering guarantee: messages from one `src` arrive in send order
    /// (per-peer FIFO); `Comm` does the `(src, tag)` matching on top.
    fn recv(&mut self) -> Result<Message, TransportError>;
}

/// The in-process default transport: one crossbeam channel per rank.
pub struct ChannelTransport {
    rank: usize,
    topo: Topology,
    senders: Vec<Sender<Message>>,
    rx: Receiver<Message>,
    abort: Option<Arc<AbortHandle>>,
}

impl ChannelTransport {
    /// Wire up one rank of an in-process cluster.
    ///
    /// `senders[d]` delivers into rank `d`'s receiver; `abort` (shared by
    /// all ranks of the run) makes blocked receives fail fast when a peer
    /// rank dies instead of deadlocking the cluster.
    pub fn new(
        rank: usize,
        topo: Topology,
        senders: Vec<Sender<Message>>,
        rx: Receiver<Message>,
        abort: Option<Arc<AbortHandle>>,
    ) -> Self {
        assert_eq!(senders.len(), topo.nranks, "one sender per rank");
        assert!(rank < topo.nranks);
        Self { rank, topo, senders, rx, abort }
    }

    /// A single-rank transport whose sends loop back to its own receiver.
    pub fn solo() -> Self {
        let (tx, rx) = crossbeam::channel::unbounded();
        Self::new(0, Topology::solo(), vec![tx], rx, None)
    }
}

impl Transport for ChannelTransport {
    fn rank(&self) -> usize {
        self.rank
    }

    fn topo(&self) -> &Topology {
        &self.topo
    }

    fn kind(&self) -> &'static str {
        "channel"
    }

    fn send(&mut self, dst: usize, msg: Message) -> Result<u64, TransportError> {
        match self.senders[dst].send(msg) {
            Ok(()) => Ok(0), // in-process: nothing crossed a wire
            Err(_) => Err(TransportError::PeerLost {
                peer: dst,
                detail: "virtual cluster channel closed".into(),
            }),
        }
    }

    fn recv(&mut self) -> Result<Message, TransportError> {
        let Some(abort) = &self.abort else {
            // no abort authority (solo / standalone comm): plain blocking recv
            return self.rx.recv().map_err(|_| TransportError::Io {
                detail: "virtual cluster channel closed (all senders gone)".into(),
            });
        };
        loop {
            if abort.is_aborted() {
                let detail = abort.detail().unwrap_or_else(|| "peer rank failed".into());
                return Err(TransportError::Aborted { detail });
            }
            match self.rx.recv_timeout(ABORT_POLL) {
                Ok(msg) => return Ok(msg),
                Err(RecvTimeoutError::Timeout) => continue,
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(TransportError::Io {
                        detail: "virtual cluster channel closed (all senders gone)".into(),
                    })
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::CommCat;
    use bytes::Bytes;

    fn msg(src: usize, tag: u64) -> Message {
        Message {
            src,
            tag,
            cat: CommCat::Other,
            sent_clock: 0.0,
            link_free: false,
            payload: Bytes::copy_from_slice(&[1, 2, 3]),
        }
    }

    #[test]
    fn channel_send_reports_zero_wire_bytes() {
        let mut t = ChannelTransport::solo();
        assert_eq!(t.send(0, msg(0, 1)).unwrap(), 0);
        let got = t.recv().unwrap();
        assert_eq!((got.src, got.tag), (0, 1));
    }

    #[test]
    fn abort_wakes_blocked_receiver() {
        let abort = Arc::new(AbortHandle::new());
        let (tx, rx) = crossbeam::channel::unbounded::<Message>();
        let mut t =
            ChannelTransport::new(0, Topology::solo(), vec![tx], rx, Some(Arc::clone(&abort)));
        let a2 = Arc::clone(&abort);
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            a2.abort("rank 1 exploded".into());
        });
        let err = t.recv().unwrap_err();
        h.join().unwrap();
        assert_eq!(err, TransportError::Aborted { detail: "rank 1 exploded".into() });
    }

    #[test]
    fn first_abort_detail_wins() {
        let a = AbortHandle::new();
        a.abort("first".into());
        a.abort("second".into());
        assert_eq!(a.detail().as_deref(), Some("first"));
    }
}
