//! Plain-old-data marker for zero-copy message payloads.
//!
//! Messages in the virtual cluster are byte buffers ([`bytes::Bytes`]). To
//! send typed slices without a serialization framework we restrict payload
//! element types to "plain old data": `Copy` types with no padding whose any
//! bit pattern is a valid value. This mirrors what CUDA-aware MPI does with
//! device buffers: raw bytes on the wire.

/// Marker trait for types that can be reinterpreted as raw bytes.
///
/// # Safety
///
/// Implementors must guarantee that the type
/// * has no padding bytes (every byte of the representation is initialized),
/// * is valid for **any** bit pattern,
/// * has no interior mutability, pointers, or lifetimes.
pub unsafe trait Pod: Copy + Send + 'static {}

unsafe impl Pod for u8 {}
unsafe impl Pod for i8 {}
unsafe impl Pod for u16 {}
unsafe impl Pod for i16 {}
unsafe impl Pod for u32 {}
unsafe impl Pod for i32 {}
unsafe impl Pod for u64 {}
unsafe impl Pod for i64 {}
unsafe impl Pod for usize {}
unsafe impl Pod for isize {}
unsafe impl Pod for f32 {}
unsafe impl Pod for f64 {}

// Fixed-size arrays of Pod have no padding between elements.
unsafe impl<T: Pod, const N: usize> Pod for [T; N] {}

/// View a Pod slice as its raw bytes.
pub fn as_bytes<T: Pod>(slice: &[T]) -> &[u8] {
    // SAFETY: T: Pod guarantees no padding and full initialization.
    unsafe { std::slice::from_raw_parts(slice.as_ptr() as *const u8, std::mem::size_of_val(slice)) }
}

/// Copy raw bytes into a typed vector.
///
/// # Panics
///
/// Panics if `bytes.len()` is not a multiple of `size_of::<T>()`.
pub fn from_bytes<T: Pod>(bytes: &[u8]) -> Vec<T> {
    let size = std::mem::size_of::<T>();
    assert!(
        size == 0 || bytes.len().is_multiple_of(size),
        "byte length {} is not a multiple of element size {}",
        bytes.len(),
        size
    );
    let n = bytes.len().checked_div(size).unwrap_or(0);
    let mut out = Vec::<T>::with_capacity(n);
    // SAFETY: we reserved n elements; T: Pod means any bit pattern is valid;
    // copy_nonoverlapping fills exactly n * size bytes.
    unsafe {
        std::ptr::copy_nonoverlapping(bytes.as_ptr(), out.as_mut_ptr() as *mut u8, n * size);
        out.set_len(n);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_f64() {
        let xs = vec![1.0f64, -2.5, 3.25, f64::MIN_POSITIVE];
        let bytes = as_bytes(&xs);
        assert_eq!(bytes.len(), 32);
        let back: Vec<f64> = from_bytes(bytes);
        assert_eq!(back, xs);
    }

    #[test]
    fn roundtrip_u32_arrays() {
        let xs = vec![[1u32, 2, 3], [4, 5, 6]];
        let back: Vec<[u32; 3]> = from_bytes(as_bytes(&xs));
        assert_eq!(back, xs);
    }

    #[test]
    fn empty_slice() {
        let xs: Vec<f32> = vec![];
        let back: Vec<f32> = from_bytes(as_bytes(&xs));
        assert!(back.is_empty());
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn misaligned_length_panics() {
        let bytes = [0u8; 7];
        let _: Vec<f64> = from_bytes(&bytes);
    }
}
