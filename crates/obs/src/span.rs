//! Hierarchical span tracer.
//!
//! [`span`] returns an RAII guard; the open-guard stack defines the tree.
//! Entering a span whose name already exists under the current parent reuses
//! that node and accumulates into it, so a solver that runs 50 GN iterations
//! produces one `gn.iter` node with `calls = 50` rather than 50 siblings.
//! Exit-matches-enter is structural: the guard's `Drop` is the only exit.
//!
//! All state is thread-local: each rank thread of a virtual cluster traces
//! its own tree and must call [`take_spans`] on that thread to drain it.

use serde::Serialize;
use std::cell::RefCell;
use std::time::Instant;

/// One aggregated node of a drained span tree.
#[derive(Serialize, Clone, Debug)]
pub struct SpanNode {
    /// Span name as passed to [`span`].
    pub name: String,
    /// How many times this span was entered under this parent.
    pub calls: u64,
    /// Total wall-clock seconds across all calls (children included).
    pub secs: f64,
    /// Child spans, in first-entered order.
    pub children: Vec<SpanNode>,
}

struct Node {
    name: &'static str,
    calls: u64,
    nanos: u64,
    children: Vec<usize>,
}

#[derive(Default)]
struct Tracer {
    nodes: Vec<Node>,
    roots: Vec<usize>,
    stack: Vec<usize>,
}

impl Tracer {
    /// Find or create the child named `name` under the current stack top
    /// (or among the roots) and return its index.
    fn child(&mut self, name: &'static str) -> usize {
        let siblings = match self.stack.last() {
            Some(&parent) => &self.nodes[parent].children,
            None => &self.roots,
        };
        if let Some(&id) = siblings.iter().find(|&&id| self.nodes[id].name == name) {
            return id;
        }
        let id = self.nodes.len();
        self.nodes.push(Node { name, calls: 0, nanos: 0, children: Vec::new() });
        match self.stack.last() {
            Some(&parent) => self.nodes[parent].children.push(id),
            None => self.roots.push(id),
        }
        id
    }

    fn export(&self, id: usize) -> SpanNode {
        let n = &self.nodes[id];
        SpanNode {
            name: n.name.to_string(),
            calls: n.calls,
            secs: n.nanos as f64 * 1e-9,
            children: n.children.iter().map(|&c| self.export(c)).collect(),
        }
    }
}

thread_local! {
    static TRACER: RefCell<Tracer> = RefCell::new(Tracer::default());
}

/// RAII guard returned by [`span`]. Dropping it exits the span and adds the
/// elapsed time to the node it opened. Inert (near-zero cost) when
/// observability was disabled at enter time.
#[must_use = "a span guard times its scope; dropping it immediately records nothing useful"]
pub struct SpanGuard {
    start: Option<Instant>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let nanos = start.elapsed().as_nanos() as u64;
            TRACER.with(|t| {
                let mut t = t.borrow_mut();
                // The stack top is necessarily the node this guard opened:
                // guards drop in reverse open order within a thread.
                if let Some(id) = t.stack.pop() {
                    t.nodes[id].nanos += nanos;
                }
            });
        }
    }
}

/// Enter a timed span. The returned guard exits it on drop.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    if !crate::enabled() {
        return SpanGuard { start: None };
    }
    TRACER.with(|t| {
        let mut t = t.borrow_mut();
        let id = t.child(name);
        t.nodes[id].calls += 1;
        t.stack.push(id);
    });
    SpanGuard { start: Some(Instant::now()) }
}

/// Drain the calling thread's span tree, returning the roots and clearing
/// the tracer. Open spans (guards not yet dropped) are not exported.
pub fn take_spans() -> Vec<SpanNode> {
    TRACER.with(|t| {
        let mut t = t.borrow_mut();
        let roots: Vec<SpanNode> = t
            .roots
            .clone()
            .iter()
            .filter(|&&id| t.nodes[id].calls > 0)
            .map(|&id| t.export(id))
            .collect();
        *t = Tracer::default();
        roots
    })
}

/// Clear the calling thread's span tree (open guards become no-ops on drop
/// only for timing attribution; their pops still balance).
pub fn reset() {
    TRACER.with(|t| {
        let mut t = t.borrow_mut();
        let depth = t.stack.len();
        *t = Tracer::default();
        // Keep the stack depth so already-open guards pop placeholders
        // instead of underflowing into freshly created nodes.
        for _ in 0..depth {
            let id = t.nodes.len();
            t.nodes.push(Node { name: "(reset)", calls: 0, nanos: 0, children: Vec::new() });
            t.stack.push(id);
        }
    });
}

/// Render a drained span forest as an indented human-readable tree.
pub fn render(spans: &[SpanNode]) -> String {
    fn walk(node: &SpanNode, depth: usize, out: &mut String) {
        let label = format!("{}{}", "  ".repeat(depth), node.name);
        out.push_str(&format!("{label:<40} {:>10.3} s  x{}\n", node.secs, node.calls));
        for c in &node.children {
            walk(c, depth + 1, out);
        }
    }
    let mut out = String::new();
    for root in spans {
        walk(root, 0, &mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nesting_and_aggregation() {
        let _g = crate::TEST_LOCK.lock().unwrap();
        crate::set_enabled(true);
        reset();
        {
            let _solve = span("solve");
            for _ in 0..3 {
                let _it = span("iter");
                let _k = span("kernel");
            }
        }
        let spans = take_spans();
        crate::set_enabled(false);
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "solve");
        assert_eq!(spans[0].calls, 1);
        assert_eq!(spans[0].children.len(), 1);
        let iter = &spans[0].children[0];
        assert_eq!(iter.calls, 3);
        assert_eq!(iter.children[0].name, "kernel");
        assert_eq!(iter.children[0].calls, 3);
        // child time is contained in parent time
        assert!(iter.secs <= spans[0].secs + 1e-9);
        assert!(iter.children[0].secs <= iter.secs + 1e-9);
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _g = crate::TEST_LOCK.lock().unwrap();
        crate::set_enabled(false);
        reset();
        {
            let _s = span("ghost");
        }
        assert!(take_spans().is_empty());
    }
}
