//! Per-GN-iteration solver records.
//!
//! The solver sets the continuation context ([`set_context`]) when it enters
//! a β-level; the Gauss–Newton loop pushes one [`GnIterRecord`] per
//! iteration ([`push_gn`]). Records are global (mutex-guarded — pushes
//! happen a handful of times per second, far off the hot path) and drained
//! with [`take_gn`].

use serde::Serialize;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// One Gauss–Newton iteration: where it ran (level/β) and what it achieved.
#[derive(Serialize, Clone, Debug)]
pub struct GnIterRecord {
    /// Grid-continuation level (0 = coarsest solved level).
    pub level: usize,
    /// Regularization weight β at this iteration.
    pub beta: f64,
    /// Iteration index within this β-level (0-based).
    pub iter: usize,
    /// Objective value after the iteration's line-search step.
    pub objective: f64,
    /// Relative gradient norm ‖g‖/‖g₀‖ at the start of the iteration.
    pub grad_rel: f64,
    /// PCG iterations spent on this iteration's Newton system.
    pub pcg_iters: usize,
}

static LEVEL: AtomicUsize = AtomicUsize::new(0);
static BETA_BITS: AtomicU64 = AtomicU64::new(0);
static GN: Mutex<Vec<GnIterRecord>> = Mutex::new(Vec::new());

/// Set the continuation context stamped onto subsequent GN records.
pub fn set_context(level: usize, beta: f64) {
    LEVEL.store(level, Ordering::Relaxed);
    BETA_BITS.store(beta.to_bits(), Ordering::Relaxed);
}

/// Current continuation context `(level, beta)`.
pub fn context() -> (usize, f64) {
    (LEVEL.load(Ordering::Relaxed), f64::from_bits(BETA_BITS.load(Ordering::Relaxed)))
}

/// Record one GN iteration under the current context. No-op while disabled.
pub fn push_gn(iter: usize, objective: f64, grad_rel: f64, pcg_iters: usize) {
    if !crate::enabled() {
        return;
    }
    let (level, beta) = context();
    GN.lock().unwrap().push(GnIterRecord { level, beta, iter, objective, grad_rel, pcg_iters });
}

/// Drain all recorded GN iterations.
pub fn take_gn() -> Vec<GnIterRecord> {
    std::mem::take(&mut *GN.lock().unwrap())
}

/// Clear records and context.
pub fn reset() {
    set_context(0, 0.0);
    GN.lock().unwrap().clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_drain() {
        let _g = crate::TEST_LOCK.lock().unwrap();
        crate::set_enabled(true);
        reset();
        set_context(1, 1e-2);
        push_gn(0, 0.5, 1.0, 7);
        push_gn(1, 0.25, 0.4, 9);
        let recs = take_gn();
        crate::set_enabled(false);
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].level, 1);
        assert_eq!(recs[0].beta, 1e-2);
        assert_eq!(recs[1].pcg_iters, 9);
        assert!(take_gn().is_empty());
    }

    #[test]
    fn disabled_push_is_noop() {
        let _g = crate::TEST_LOCK.lock().unwrap();
        crate::set_enabled(false);
        push_gn(0, 1.0, 1.0, 1);
        assert!(take_gn().is_empty());
    }
}
