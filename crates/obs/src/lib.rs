//! Observability for the CLAIRE solver stack.
//!
//! Three pieces, all gated behind one global switch so the hot path costs a
//! single relaxed atomic load + branch when disabled:
//!
//! * [`span`] — a hierarchical span tracer. RAII guards time `enter`/`exit`
//!   pairs that form a tree (solve → β-level → GN iteration → PCG → kernel);
//!   repeated spans with the same name under the same parent aggregate into
//!   one node (call count + total time), so the tree stays bounded no matter
//!   how many iterations run.
//! * [`metrics`] — a registry of statically-declared counters, gauges, and
//!   histograms with `&'static str` keys. Declaration is `const`; the first
//!   touch self-registers the metric, after which updates are single
//!   lock-free atomic ops.
//! * [`report`] — [`report::RunReport`], a JSON-serializable record that
//!   unifies what previously lived in claire-par kernel timers, claire-mpi
//!   comm stats, `PrecondState` counters, and `core/report.rs`.
//!
//! Typical use: call [`begin`] before a solve (enables collection and clears
//! prior data), run the solver, then assemble a `RunReport` (claire-core's
//! `observe::collect_run_report` does this) and write `report.to_json()`.
//!
//! Span data is **per thread** — each rank thread in a virtual cluster owns
//! its own tree and must drain it (`span::take_spans`) on that thread.
//! Metrics and GN-iteration records are global and merge across threads.

pub mod metrics;
pub mod records;
pub mod report;
pub mod span;

use std::sync::atomic::{AtomicBool, Ordering};

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether observability collection is currently on.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn observability collection on or off. Spans already open keep their
/// guards balanced regardless of toggles.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Enable collection and clear all previously recorded observability data
/// (spans on the calling thread, all metrics, GN-iteration records).
pub fn begin() {
    set_enabled(true);
    reset();
}

/// Clear all recorded data without changing the enabled flag.
pub fn reset() {
    span::reset();
    metrics::reset();
    records::reset();
}

/// Serializes unit tests that toggle the global enabled flag.
#[cfg(test)]
pub(crate) static TEST_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enable_toggle() {
        let _g = TEST_LOCK.lock().unwrap();
        set_enabled(true);
        assert!(enabled());
        set_enabled(false);
        assert!(!enabled());
    }
}
