//! [`RunReport`]: one JSON document per solver run.
//!
//! Unifies the telemetry that previously had to be scraped crate by crate:
//! kernel phase timings (claire-par), per-phase and per-collective
//! communication volume (claire-mpi), preconditioner/GN/PCG counters
//! (claire-core, claire-opt), and the span tree from this crate. The
//! paper's tables map onto it directly — Table 2 columns come from
//! `kernels`/`comm`, Table 5 from `kernels` (FFT phases), and Table 7's
//! FFT/IP/FD runtime shares from `phases`.

use crate::metrics::MetricEntry;
use crate::records::GnIterRecord;
use crate::span::{self, SpanNode};
use serde::Serialize;

/// Top-level keys every emitted `RunReport` JSON object contains, in order.
/// CI validates emitted reports against this list.
pub const SCHEMA_KEYS: &[&str] = &[
    "label",
    "grid",
    "nranks",
    "nt",
    "precond",
    "backend",
    "transport",
    "precision",
    "summary",
    "scheduling",
    "phases",
    "gn_trace",
    "kernels",
    "comm",
    "collectives",
    "metrics",
    "memory",
    "roofline",
    "spans",
];

/// Headline solve outcome (mirrors the paper's Table 6 row).
#[derive(Serialize, Clone, Debug, Default)]
pub struct RunSummary {
    /// Total Gauss–Newton iterations across all β-levels.
    pub gn_iters: usize,
    /// Total PCG iterations.
    pub pcg_iters: usize,
    /// Objective evaluations (line search included).
    pub obj_evals: usize,
    /// Hessian-vector products.
    pub hess_applies: usize,
    /// Relative final mismatch ‖m(1) − m₁‖/‖m₀ − m₁‖.
    pub rel_mismatch: f64,
    /// Relative final gradient norm.
    pub grad_rel: f64,
    /// Minimum determinant of the deformation-gradient field.
    pub jac_det_min: f64,
    /// Maximum determinant of the deformation-gradient field.
    pub jac_det_max: f64,
    /// Measured wall-clock seconds for the solve.
    pub time_total: f64,
    /// Modeled (virtual-cluster) seconds for the solve.
    pub modeled_total: f64,
    /// Whether the gradient tolerance was reached.
    pub converged: bool,
}

/// Scheduling metadata for solves executed through a job service
/// (`claire-serve`): which job/worker this run was, how long it waited in
/// the admission queue, and its end-to-end latency. Zero-valued defaults for
/// runs executed directly (outside any service).
#[derive(Serialize, Clone, Debug, Default)]
pub struct SchedulingInfo {
    /// Service-assigned job id (0 for direct runs).
    pub job_id: u64,
    /// Priority class label (`high`/`normal`/`low`; empty for direct runs).
    pub priority: String,
    /// Index of the worker that executed the job.
    pub worker: usize,
    /// Seconds spent queued between submission and execution start.
    pub queue_wait_secs: f64,
    /// Seconds executing (solve wall-clock inside the worker).
    pub run_secs: f64,
    /// End-to-end seconds from submission to terminal status.
    pub total_secs: f64,
    /// Deadline the job was admitted with, seconds from submission
    /// (0 = none).
    pub deadline_secs: f64,
    /// Identifier of the coalesced batch this job ran in (0 = solo run,
    /// not batched). Jobs sharing a `batch_id` were solved by one
    /// `BatchSolver` invocation with interleaved Gauss–Newton iterations.
    pub batch_id: u64,
    /// Number of jobs coalesced into that batch (0 = solo run).
    pub batch_size: usize,
    /// Tenant the job was accounted to (empty = default tenant or a
    /// direct run).
    pub tenant: String,
    /// Whether this result was served from the service's content-hash
    /// result cache instead of running the solver.
    pub from_cache: bool,
}

/// Runtime share per kernel phase — the paper's Table 7 FFT/IP/FD columns.
#[derive(Serialize, Clone, Debug, Default)]
pub struct PhaseShares {
    /// Spectral work: serial FFT + distributed FFT + transpose.
    pub fft_secs: f64,
    /// Interpolation (semi-Lagrangian evaluation).
    pub ip_secs: f64,
    /// Finite-difference stencils.
    pub fd_secs: f64,
    /// Everything else (field ops, ghost exchange, solver overhead).
    pub other_secs: f64,
    /// Total solve wall-clock these shares partition.
    pub total_secs: f64,
}

impl PhaseShares {
    /// Derive shares from per-kernel timings plus the solve wall-clock.
    /// Kernel names follow claire-par's timer labels.
    pub fn from_kernels(kernels: &[KernelEntry], total_secs: f64) -> Self {
        let sum = |names: &[&str]| -> f64 {
            kernels.iter().filter(|k| names.contains(&k.name.as_str())).map(|k| k.secs).sum()
        };
        let fft_secs = sum(&["fft_serial", "fft_dist", "fft_transpose"]);
        let ip_secs = sum(&["interp"]);
        let fd_secs = sum(&["fd"]);
        let other_secs = (total_secs - fft_secs - ip_secs - fd_secs).max(0.0);
        PhaseShares { fft_secs, ip_secs, fd_secs, other_secs, total_secs }
    }
}

/// One kernel timer (from claire-par's per-kernel counters).
#[derive(Serialize, Clone, Debug)]
pub struct KernelEntry {
    /// Kernel label (`fd`, `fft_serial`, `fft_dist`, `fft_transpose`,
    /// `interp`, `ghost`, `field_ops`, `semilag`).
    pub name: String,
    /// Number of timed invocations.
    pub calls: u64,
    /// Total seconds across invocations.
    pub secs: f64,
}

/// Communication volume for one traffic category (ghost exchange, scatter,
/// FFT transpose, …) — claire-mpi's `CommCat` breakdown.
#[derive(Serialize, Clone, Debug)]
pub struct CommPhaseEntry {
    /// Category label.
    pub phase: String,
    /// Payload bytes sent.
    pub bytes: u64,
    /// Messages sent.
    pub msgs: u64,
    /// Real bytes on the wire, framing and headers included (0 on the
    /// in-process channel transport, where nothing is serialized).
    pub wire_bytes: u64,
    /// Modeled network seconds for this category.
    pub modeled_secs: f64,
}

/// Calls/bytes for one collective operation across the communicator.
#[derive(Serialize, Clone, Debug)]
pub struct CollectiveEntry {
    /// Operation name (`allreduce`, `alltoallv`, `broadcast`, …).
    pub op: String,
    /// Number of invocations.
    pub calls: u64,
    /// Payload bytes moved by those invocations.
    pub bytes: u64,
}

/// Workspace-pool accounting for one budget category (paper §3: µPDE,
/// µFFT, µFD, µSL, µGN/CG, plus `other`).
#[derive(Serialize, Clone, Debug)]
pub struct MemoryCatEntry {
    /// Category label (`pde`, `fft`, `fd`, `sl`, `gn_cg`, `other`).
    pub cat: String,
    /// Buffers checked out of the pool (hits + misses).
    pub checkouts: u64,
    /// Checkouts that had to allocate fresh memory.
    pub misses: u64,
    /// High-water mark of bytes simultaneously checked out.
    pub peak_bytes: u64,
}

/// Measured workspace-pool and FFT-plan-cache counters, next to the
/// analytic per-rank estimate from the paper's §3 memory model
/// (claire-core `memory::estimate`). Steady state shows up here as
/// `pool_misses` staying flat while `pool_checkouts` keeps growing.
///
/// **Sharing semantics.** The pools and the plan cache are process-global
/// and shared by every solve — in a batched run (`scheduling.batch_id`
/// nonzero), by all members at once. Event counts (`pool_checkouts`,
/// `pool_misses`, `fft_plan_hits`, `fft_plan_misses`) are attributed to
/// *this job only*: they are exact deltas sampled around the job's own
/// solver steps, so summing them across a batch's reports double-counts
/// nothing. Byte *levels* (`pool_peak_bytes`, `pool_in_use_bytes`, the
/// per-category `peak_bytes`) are properties of the shared pool family and
/// are reported family-wide — identical across a batch's members and not
/// summable.
#[derive(Serialize, Clone, Debug, Default)]
pub struct MemoryInfo {
    /// Pool checkouts attributed to this job (exact per-job delta, even
    /// inside a batch).
    pub pool_checkouts: u64,
    /// Checkouts by this job that allocated fresh memory (per-job delta).
    pub pool_misses: u64,
    /// Peak bytes simultaneously checked out of the shared pool family
    /// (not per-job; identical across batch members).
    pub pool_peak_bytes: u64,
    /// Bytes still checked out of the shared pool family when the report
    /// was collected (not per-job).
    pub pool_in_use_bytes: u64,
    /// Per-category breakdown in the paper's §3 order.
    pub categories: Vec<MemoryCatEntry>,
    /// Plans resident in the shared FFT plan cache (process-wide level,
    /// not per-job).
    pub fft_plans: u64,
    /// FFT plan-cache hits attributed to this job (per-job delta).
    pub fft_plan_hits: u64,
    /// FFT plan-cache misses (plans built) attributed to this job
    /// (per-job delta).
    pub fft_plan_misses: u64,
    /// Modeled per-rank bytes from the analytic §3 memory model
    /// (0 when no model was attached).
    pub modeled_bytes: u64,
    /// Result-cache hits attributed to this job: 1 when the result was
    /// served from the service's content-hash cache, else 0.
    pub result_cache_hits: u64,
    /// Result-cache misses attributed to this job: 1 when the job was
    /// looked up but had to solve (cache enabled), else 0.
    pub result_cache_misses: u64,
}

/// One kernel family's achieved DRAM bandwidth against the host roofline.
#[derive(Serialize, Clone, Debug)]
pub struct RooflineKernelEntry {
    /// Kernel label (matches [`KernelEntry::name`]).
    pub kernel: String,
    /// Timed invocations the traffic model was applied to.
    pub calls: u64,
    /// Measured seconds across those invocations.
    pub secs: f64,
    /// Modeled DRAM bytes moved across those invocations (streaming-pass
    /// model; see `claire_perf::machine::kernel_traffic_bytes`).
    pub modeled_bytes: f64,
    /// Achieved bytes/sec: `modeled_bytes / secs`.
    pub achieved_bps: f64,
    /// Achieved bandwidth as a percentage of the host DRAM peak.
    pub pct_of_peak: f64,
}

/// Per-kernel %-of-DRAM-peak block: the paper's §3 bandwidth-bound cost
/// model made visible per run. The denominator is the host roofline — a
/// STREAM-style probe (or the `CLAIRE_DRAM_PEAK` override) — so the block
/// answers "how close is each kernel family to saturating this machine's
/// memory system". Kernels without a streaming-traffic model (ghost
/// exchange) are omitted from `kernels`.
#[derive(Serialize, Clone, Debug, Default)]
pub struct RooflineInfo {
    /// Host DRAM peak the percentages are measured against (bytes/sec).
    pub dram_peak_bps: f64,
    /// True when the peak came from the in-process STREAM probe, false when
    /// the `CLAIRE_DRAM_PEAK` environment override supplied it.
    pub probed: bool,
    /// Per-kernel-family achieved bandwidth, in kernel-timer order.
    pub kernels: Vec<RooflineKernelEntry>,
}

/// The unified per-run report. Serialize with [`RunReport::to_json`].
#[derive(Serialize, Clone, Debug)]
pub struct RunReport {
    /// Free-form run label (dataset or experiment name).
    pub label: String,
    /// Global grid extents n₁ × n₂ × n₃.
    pub grid: [usize; 3],
    /// Ranks in the communicator.
    pub nranks: usize,
    /// Semi-Lagrangian time steps.
    pub nt: usize,
    /// Preconditioner label.
    pub precond: String,
    /// Active SIMD backend for the hot kernels (`scalar` or `avx2`).
    pub backend: String,
    /// Comm transport the ranks exchanged messages over (`channel` for the
    /// in-process virtual cluster, `socket` for multi-process execution).
    pub transport: String,
    /// Solver arithmetic width: `f64` (full double precision) or `mixed`
    /// (f32 inner Krylov/FFT path under the f64 outer Gauss–Newton loop).
    pub precision: String,
    /// Headline outcome.
    pub summary: RunSummary,
    /// Queue/scheduling metadata (zeroed for runs outside `claire-serve`).
    pub scheduling: SchedulingInfo,
    /// FFT/IP/FD runtime shares.
    pub phases: PhaseShares,
    /// Per-GN-iteration trace (objective, gradient norm, PCG iterations).
    pub gn_trace: Vec<GnIterRecord>,
    /// Per-kernel timers.
    pub kernels: Vec<KernelEntry>,
    /// Per-category communication volume.
    pub comm: Vec<CommPhaseEntry>,
    /// Per-collective calls/bytes.
    pub collectives: Vec<CollectiveEntry>,
    /// Registered metrics snapshot.
    pub metrics: Vec<MetricEntry>,
    /// Workspace-pool / plan-cache counters vs the analytic memory model.
    pub memory: MemoryInfo,
    /// Per-kernel achieved bytes/sec vs the host DRAM roofline.
    pub roofline: RooflineInfo,
    /// Hierarchical span tree (per rank-0 thread).
    pub spans: Vec<SpanNode>,
}

impl RunReport {
    /// An empty report with the given label — callers fill in sections.
    pub fn new(label: impl Into<String>) -> Self {
        RunReport {
            label: label.into(),
            grid: [0; 3],
            nranks: 1,
            nt: 0,
            precond: String::new(),
            backend: String::new(),
            transport: String::new(),
            precision: "f64".into(),
            summary: RunSummary::default(),
            scheduling: SchedulingInfo::default(),
            phases: PhaseShares::default(),
            gn_trace: Vec::new(),
            kernels: Vec::new(),
            comm: Vec::new(),
            collectives: Vec::new(),
            metrics: Vec::new(),
            memory: MemoryInfo::default(),
            roofline: RooflineInfo::default(),
            spans: Vec::new(),
        }
    }

    /// Pretty-printed JSON document.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("RunReport serialization is total")
    }

    /// Human-readable span-tree summary plus headline numbers.
    pub fn span_summary(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "run `{}`  {}x{}x{}  ranks={}  nt={}  pc={}  simd={}\n",
            self.label,
            self.grid[0],
            self.grid[1],
            self.grid[2],
            self.nranks,
            self.nt,
            self.precond,
            self.backend
        ));
        out.push_str(&format!(
            "  GN {}  PCG {}  mismatch {:.3e}  |g|rel {:.3e}  {:.3} s\n",
            self.summary.gn_iters,
            self.summary.pcg_iters,
            self.summary.rel_mismatch,
            self.summary.grad_rel,
            self.summary.time_total
        ));
        out.push_str(&format!(
            "  phases: fft {:.3} s  ip {:.3} s  fd {:.3} s  other {:.3} s\n",
            self.phases.fft_secs, self.phases.ip_secs, self.phases.fd_secs, self.phases.other_secs
        ));
        if self.scheduling.total_secs > 0.0 {
            out.push_str(&format!(
                "  job {} ({}) on worker {}: queued {:.3} s, ran {:.3} s, e2e {:.3} s\n",
                self.scheduling.job_id,
                self.scheduling.priority,
                self.scheduling.worker,
                self.scheduling.queue_wait_secs,
                self.scheduling.run_secs,
                self.scheduling.total_secs
            ));
        }
        if !self.spans.is_empty() {
            out.push_str("span tree:\n");
            out.push_str(&span::render(&self.spans));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_keys_match_serialized_object() {
        let report = RunReport::new("unit");
        let serde::Value::Object(pairs) = serde::Serialize::to_value(&report) else {
            panic!("RunReport must serialize to an object");
        };
        let keys: Vec<&str> = pairs.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, SCHEMA_KEYS);
    }

    #[test]
    fn phase_shares_partition_total() {
        let kernels = vec![
            KernelEntry { name: "fft_serial".into(), calls: 2, secs: 1.0 },
            KernelEntry { name: "fft_transpose".into(), calls: 2, secs: 0.5 },
            KernelEntry { name: "interp".into(), calls: 4, secs: 2.0 },
            KernelEntry { name: "fd".into(), calls: 8, secs: 0.25 },
        ];
        let p = PhaseShares::from_kernels(&kernels, 5.0);
        assert_eq!(p.fft_secs, 1.5);
        assert_eq!(p.ip_secs, 2.0);
        assert_eq!(p.fd_secs, 0.25);
        assert!((p.other_secs - 1.25).abs() < 1e-12);
    }
}
