//! Metrics registry: statically-declared counters, gauges, and histograms.
//!
//! Declare a metric as a `static` with a `const` constructor:
//!
//! ```
//! static GHOST_BYTES: claire_obs::metrics::Counter =
//!     claire_obs::metrics::Counter::new("ghost.bytes");
//! GHOST_BYTES.add(4096);
//! ```
//!
//! The first update self-registers the metric in a global registry (one
//! compare-exchange + a short mutex hold, once per metric); every later
//! update is a single lock-free atomic op. When observability is disabled
//! the update is one relaxed load + branch.

use serde::Serialize;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// Number of log2 buckets a [`Histogram`] keeps. Bucket `i` counts values
/// `v` with `floor(log2(v)) == i - HIST_BUCKET_BIAS`.
pub const HIST_BUCKETS: usize = 40;
const HIST_BUCKET_BIAS: i32 = 20;

enum MetricRef {
    Counter(&'static Counter),
    Gauge(&'static Gauge),
    Histogram(&'static Histogram),
}

static REGISTRY: Mutex<Vec<MetricRef>> = Mutex::new(Vec::new());

fn register(flag: &AtomicBool, m: MetricRef) {
    if flag.compare_exchange(false, true, Ordering::Relaxed, Ordering::Relaxed).is_ok() {
        REGISTRY.lock().unwrap().push(m);
    }
}

/// Monotonic event/byte counter.
pub struct Counter {
    key: &'static str,
    value: AtomicU64,
    registered: AtomicBool,
}

impl Counter {
    /// Const-construct a counter with a static key.
    pub const fn new(key: &'static str) -> Self {
        Counter { key, value: AtomicU64::new(0), registered: AtomicBool::new(false) }
    }

    /// Add `n`. No-op while observability is disabled.
    #[inline]
    pub fn add(&'static self, n: u64) {
        if !crate::enabled() {
            return;
        }
        register(&self.registered, MetricRef::Counter(self));
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Add 1. No-op while observability is disabled.
    #[inline]
    pub fn inc(&'static self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Last-write-wins instantaneous value.
pub struct Gauge {
    key: &'static str,
    bits: AtomicU64,
    registered: AtomicBool,
}

impl Gauge {
    /// Const-construct a gauge with a static key.
    pub const fn new(key: &'static str) -> Self {
        Gauge { key, bits: AtomicU64::new(0), registered: AtomicBool::new(false) }
    }

    /// Set the gauge. No-op while observability is disabled.
    #[inline]
    pub fn set(&'static self, v: f64) {
        if !crate::enabled() {
            return;
        }
        register(&self.registered, MetricRef::Gauge(self));
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Count/sum/max summary with log2 buckets (e.g. for per-call durations).
pub struct Histogram {
    key: &'static str,
    count: AtomicU64,
    sum_bits: AtomicU64,
    max_bits: AtomicU64,
    buckets: [AtomicU64; HIST_BUCKETS],
    registered: AtomicBool,
}

impl Histogram {
    /// Const-construct a histogram with a static key.
    pub const fn new(key: &'static str) -> Self {
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Histogram {
            key,
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0),
            max_bits: AtomicU64::new(0),
            buckets: [ZERO; HIST_BUCKETS],
            registered: AtomicBool::new(false),
        }
    }

    /// Record a sample (negative samples clamp to 0). No-op while disabled.
    #[inline]
    pub fn record(&'static self, v: f64) {
        if !crate::enabled() {
            return;
        }
        register(&self.registered, MetricRef::Histogram(self));
        let v = v.max(0.0);
        self.count.fetch_add(1, Ordering::Relaxed);
        // f64 add via CAS loop — contention is negligible at record rates.
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let new = (f64::from_bits(cur) + v).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                new,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
        let mut cur = self.max_bits.load(Ordering::Relaxed);
        while v > f64::from_bits(cur) {
            match self.max_bits.compare_exchange_weak(
                cur,
                v.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
        self.buckets[Self::bucket(v)].fetch_add(1, Ordering::Relaxed);
    }

    fn bucket(v: f64) -> usize {
        if v <= 0.0 {
            return 0;
        }
        (v.log2().floor() as i32 + HIST_BUCKET_BIAS).clamp(0, HIST_BUCKETS as i32 - 1) as usize
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded samples.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// Largest recorded sample.
    pub fn max(&self) -> f64 {
        f64::from_bits(self.max_bits.load(Ordering::Relaxed))
    }
}

/// One metric's state at snapshot time.
#[derive(Serialize, Clone, Debug)]
pub struct MetricEntry {
    /// Static key the metric was declared with.
    pub key: String,
    /// `"counter"`, `"gauge"`, or `"histogram"`.
    pub kind: String,
    /// Counter value / histogram sample count; 0 for gauges.
    pub count: u64,
    /// Gauge value / histogram sum; counter value as f64.
    pub value: f64,
    /// Histogram max; 0 otherwise.
    pub max: f64,
}

/// Snapshot every registered metric, sorted by key.
pub fn snapshot() -> Vec<MetricEntry> {
    let reg = REGISTRY.lock().unwrap();
    let mut out: Vec<MetricEntry> = reg
        .iter()
        .map(|m| match m {
            MetricRef::Counter(c) => MetricEntry {
                key: c.key.to_string(),
                kind: "counter".to_string(),
                count: c.get(),
                value: c.get() as f64,
                max: 0.0,
            },
            MetricRef::Gauge(g) => MetricEntry {
                key: g.key.to_string(),
                kind: "gauge".to_string(),
                count: 0,
                value: g.get(),
                max: 0.0,
            },
            MetricRef::Histogram(h) => MetricEntry {
                key: h.key.to_string(),
                kind: "histogram".to_string(),
                count: h.count(),
                value: h.sum(),
                max: h.max(),
            },
        })
        .collect();
    out.sort_by(|a, b| a.key.cmp(&b.key));
    out
}

/// Zero every registered metric (registrations persist — the statics are
/// 'static and stay in the registry).
pub fn reset() {
    let reg = REGISTRY.lock().unwrap();
    for m in reg.iter() {
        match m {
            MetricRef::Counter(c) => c.value.store(0, Ordering::Relaxed),
            MetricRef::Gauge(g) => g.bits.store(0, Ordering::Relaxed),
            MetricRef::Histogram(h) => {
                h.count.store(0, Ordering::Relaxed);
                h.sum_bits.store(0, Ordering::Relaxed);
                h.max_bits.store(0, Ordering::Relaxed);
                for b in &h.buckets {
                    b.store(0, Ordering::Relaxed);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    static C: Counter = Counter::new("test.counter");
    static G: Gauge = Gauge::new("test.gauge");
    static H: Histogram = Histogram::new("test.hist");

    #[test]
    fn counter_gauge_histogram() {
        let _g = crate::TEST_LOCK.lock().unwrap();
        crate::set_enabled(true);
        reset();
        C.add(5);
        C.inc();
        G.set(2.5);
        H.record(1.0);
        H.record(3.0);
        assert_eq!(C.get(), 6);
        assert_eq!(G.get(), 2.5);
        assert_eq!(H.count(), 2);
        assert_eq!(H.sum(), 4.0);
        assert_eq!(H.max(), 3.0);
        let snap = snapshot();
        assert!(snap.iter().any(|e| e.key == "test.counter" && e.count == 6));
        crate::set_enabled(false);
    }

    #[test]
    fn disabled_is_noop() {
        let _g = crate::TEST_LOCK.lock().unwrap();
        crate::set_enabled(false);
        static D: Counter = Counter::new("test.disabled");
        D.add(7);
        assert_eq!(D.get(), 0);
    }
}
