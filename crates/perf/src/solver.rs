//! Whole-solver cost composition (paper eq. 10) for Table 7 / Fig. 5.
//!
//! ```text
//! c_total ≈ nGN · ( nCG · (2·cPDE + cH + cPC) + 2·cPDE )
//! ```
//!
//! expanded into invocation counts of the three kernels for this
//! implementation of Algorithm 2 (gradient, `nCG` Hessian matvecs + InvA
//! preconditioner applications, and the line-search objective evaluations
//! per Gauss–Newton iteration).

use claire_mpi::model::AlltoallMethod;
use serde::Serialize;

use crate::kernels::{fd_time, fft_pair_time, ip_flops, sl_phases, WORD};
use crate::machine::{KernelTime, Machine};

/// Solver iteration counts for the composition.
#[derive(Clone, Copy, Debug)]
pub struct SolverCounts {
    /// Gauss–Newton iterations.
    pub n_gn: usize,
    /// PCG iterations per Newton step.
    pub n_cg: usize,
    /// Semi-Lagrangian time steps.
    pub nt: usize,
    /// Cubic (true) or trilinear (false) interpolation.
    pub cubic: bool,
    /// Objective evaluations per Gauss–Newton iteration (line search).
    pub obj_evals_per_gn: f64,
}

impl SolverCounts {
    /// The paper's Table 7 configuration: 5 GN × 10 PCG, Nt = 4, linear
    /// IP, InvA preconditioner.
    pub fn table7() -> SolverCounts {
        SolverCounts { n_gn: 5, n_cg: 10, nt: 4, cubic: false, obj_evals_per_gn: 2.0 }
    }
}

/// Modeled per-kernel breakdown of a full solve (one Table 7 row).
#[derive(Clone, Copy, Debug, Serialize)]
pub struct SolverBreakdown {
    /// FFT kernel (spectral regularization / preconditioner).
    pub fft: KernelTime,
    /// Semi-Lagrangian interpolation kernel.
    pub sl: KernelTime,
    /// Finite-difference kernel.
    pub fd: KernelTime,
    /// Everything else (axpys, reductions, line-search logic).
    pub other: KernelTime,
    /// Modeled memory per GPU, GB (paper §3 formula).
    pub memory_gb: f64,
}

impl SolverBreakdown {
    /// Total modeled seconds.
    pub fn total(&self) -> KernelTime {
        self.fft.add(&self.sl).add(&self.fd).add(&self.other)
    }
}

/// Invocation counts of the three kernels for one full solve.
#[derive(Clone, Copy, Debug)]
pub struct KernelCounts {
    /// 3D FFT pairs (forward + inverse).
    pub fft_pairs: f64,
    /// Semi-Lagrangian advection units (one unit = `(Nt+3)·N/p` queries).
    pub sl_units: f64,
    /// FD gradient operations (3 derivatives each).
    pub fd_ops: f64,
}

/// Count kernel invocations per eq. (10) and this implementation of
/// Algorithm 2.
pub fn kernel_counts(c: &SolverCounts) -> KernelCounts {
    let (n_gn, n_cg, nt) = (c.n_gn as f64, c.n_cg as f64, c.nt as f64);
    let obj = c.obj_evals_per_gn;
    // FFT pairs: 3 components per operator application
    //   gradient: βAv (3) | per CG: Hessian βAṽ (3) + InvA (3) | objective: 3
    let fft_pairs = n_gn * (3.0 + n_cg * 6.0 + obj * 3.0);
    // interpolation queries in units of N/p:
    //   trajectory: 2 RK2 sweeps × 3 components = 6
    //   state: Nt | adjoint: 2·Nt (field + source) | incrementals: 2·2·Nt
    let q_grad = 6.0 + nt + 2.0 * nt;
    let q_cg = 4.0 * nt;
    let q_obj = 6.0 + nt;
    let queries = n_gn * (q_grad + n_cg * q_cg + obj * q_obj);
    let sl_units = queries / (nt + 3.0);
    // FD gradient ops: divv (1 per trajectory) + (Nt+1) state gradients in
    // the λ∇m integral and again in the incremental-state source term
    // (recompute path, the paper's default)
    let fd_ops = n_gn * ((1.0 + nt + 1.0) + n_cg * 2.0 * (nt + 1.0) + obj);
    KernelCounts { fft_pairs, sl_units, fd_ops }
}

/// Model one full solve (a Table 7 row) at paper scale.
pub fn solver_time(
    machine: &Machine,
    n: [usize; 3],
    p: usize,
    c: &SolverCounts,
) -> SolverBreakdown {
    let k = kernel_counts(c);
    let fft1 = fft_pair_time(machine, n, p, AlltoallMethod::Auto);
    // one SL unit = one advection; sl_phases models exactly one advection
    let sl1 = sl_phases(machine, n, p, c.cubic, c.nt).kernel_time();
    let fd1 = fd_time(machine, n, p);

    let fft = fft1.scale(k.fft_pairs);
    let sl = sl1.scale(k.sl_units);
    let fd = fd1.scale(k.fd_ops);

    // "other": axpys/reductions — a few dozen field sweeps per CG iteration
    let nn = n[0] as f64 * n[1] as f64 * n[2] as f64 / p as f64;
    let sweeps = c.n_gn as f64 * (c.n_cg as f64 + 1.0) * 30.0;
    let other_compute = sweeps * nn * WORD / machine.device.dram_bw;
    // reductions: 2 per CG iteration, log2(p) tree latency
    let red = c.n_gn as f64 * c.n_cg as f64 * 4.0;
    let topo = machine.topo(p);
    let other_comm = red * machine.link.tree_time(8, &topo) * 2.0;
    let other = KernelTime::new(other_compute, other_comm);

    // memory per GPU: (74+Nt)·N·µ0/p + ghost layers (paper §3)
    let d = if c.cubic { 3.0 } else { 1.0 };
    let memory_gb = ((74.0 + c.nt as f64) * n[0] as f64 * n[1] as f64 * n[2] as f64 * WORD
        / p as f64
        + 30.0 * d * n[1] as f64 * n[2] as f64 * WORD)
        / 1e9;

    let _ = ip_flops(c.cubic); // constants documented in kernels
    SolverBreakdown { fft, sl, fd, other, memory_gb }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn within(model: f64, paper: f64, factor: f64) -> bool {
        model > paper / factor && model < paper * factor
    }

    #[test]
    fn table7_anchor_512_4gpus() {
        // paper: 512³ on 4 GPUs — FFT 7.33 s, SL 4.26 s, FD 1.62 s,
        // overall 1.62e1 s, 52.5% comm, 11.2 GB/GPU
        let m = Machine::longhorn();
        let b = solver_time(&m, [512, 512, 512], 4, &SolverCounts::table7());
        assert!(within(b.fft.total(), 7.33, 3.0), "FFT {}", b.fft.total());
        assert!(within(b.sl.total(), 4.26, 3.0), "SL {}", b.sl.total());
        assert!(within(b.fd.total(), 1.62, 3.0), "FD {}", b.fd.total());
        assert!(within(b.total().total(), 16.2, 2.5), "total {}", b.total().total());
        assert!(within(b.memory_gb, 11.2, 1.5), "mem {}", b.memory_gb);
    }

    #[test]
    fn weak_scaling_comm_fraction_grows() {
        // paper Table 7 weak scaling: 52.5% → 85.7% → 88.1% comm
        let m = Machine::longhorn();
        let c = SolverCounts::table7();
        let a = solver_time(&m, [512, 512, 512], 4, &c);
        let b = solver_time(&m, [1024, 1024, 1024], 32, &c);
        let d = solver_time(&m, [2048, 2048, 2048], 256, &c);
        assert!(a.total().comm_pct() < b.total().comm_pct());
        assert!(b.total().comm_pct() < d.total().comm_pct() + 5.0);
        assert!(b.total().comm_pct() > 60.0);
    }

    #[test]
    fn fft_dominates_runtime() {
        // paper Fig. 5: "the runtime is dominated by the FFT kernel"
        let m = Machine::longhorn();
        let b = solver_time(&m, [1024, 1024, 1024], 32, &SolverCounts::table7());
        assert!(b.fft.total() > b.sl.total());
        assert!(b.fft.total() > b.fd.total());
    }

    #[test]
    fn largest_run_memory_fits_v100() {
        // paper: 2048³ on 256 GPUs = 12.5 GB/GPU, "the largest problem we
        // could fit"
        let m = Machine::longhorn();
        let b = solver_time(&m, [2048, 2048, 2048], 256, &SolverCounts::table7());
        assert!(b.memory_gb > 8.0 && b.memory_gb < 16.0, "{}", b.memory_gb);
    }

    #[test]
    fn strong_scaling_reduces_total() {
        // paper Table 7 strong scaling at 512³: 16.2 → 7.72 s from 4 → 64
        let m = Machine::longhorn();
        let c = SolverCounts::table7();
        let t4 = solver_time(&m, [512, 512, 512], 4, &c).total().total();
        let t64 = solver_time(&m, [512, 512, 512], 64, &c).total().total();
        assert!(t64 < t4, "strong scaling should reduce runtime: {t4} → {t64}");
        // but not by 16× (communication limits it — paper gets only 2.1×)
        assert!(t64 > t4 / 8.0, "scaling must be communication-limited");
    }
}
