//! Machine description and modeled kernel time splits, plus the *host*
//! roofline: a small STREAM-style probe measuring this machine's sustained
//! DRAM bandwidth, against which per-kernel achieved bytes/sec are reported
//! as %-of-peak (the paper's §3 bandwidth-bound cost model, applied to the
//! CPU reproduction instead of the V100).

use std::sync::OnceLock;

use claire_mpi::model::{DeviceModel, LinkModel};
use claire_mpi::Topology;
use serde::Serialize;

/// A modeled cluster: device roofline + interconnect + node shape.
#[derive(Clone, Copy, Debug)]
pub struct Machine {
    /// Per-GPU roofline.
    pub device: DeviceModel,
    /// Interconnect α–β model (Table 4 calibration).
    pub link: LinkModel,
    /// GPUs per node (Longhorn: 4).
    pub gpus_per_node: usize,
}

impl Machine {
    /// TACC Longhorn, the paper's system.
    pub fn longhorn() -> Machine {
        Machine { device: DeviceModel::default(), link: LinkModel::default(), gpus_per_node: 4 }
    }

    /// Topology for `p` ranks on this machine.
    pub fn topo(&self, p: usize) -> Topology {
        Topology::new(p, self.gpus_per_node)
    }
}

/// The measured roofline of the machine this process runs on.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct HostRoofline {
    /// Sustained DRAM bandwidth in bytes/sec (STREAM-triad style measurement
    /// or the `CLAIRE_DRAM_PEAK` override).
    pub dram_bw: f64,
    /// True when the value came from the in-process probe; false when the
    /// `CLAIRE_DRAM_PEAK` environment override supplied it.
    pub probed: bool,
}

/// Triad working-set: three arrays of 2²⁰ f64 (8 MiB each) — larger than
/// typical L2, small enough that one probe rep streams 24 MiB and the whole
/// calibration stays well under 100 ms even on slow CI runners.
const PROBE_LEN: usize = 1 << 20;
const PROBE_REPS: usize = 5;

/// Best-of-`PROBE_REPS` STREAM triad (`a[i] = b[i] + s·c[i]`) bandwidth in
/// bytes/sec, counting 3 × 8 bytes per element (two reads, one write;
/// write-allocate traffic is ignored, matching STREAM's convention).
fn stream_triad_probe() -> f64 {
    let b: Vec<f64> = (0..PROBE_LEN).map(|i| i as f64 * 0.5).collect();
    let c: Vec<f64> = (0..PROBE_LEN).map(|i| 1.0 - i as f64 * 0.25).collect();
    let mut a = vec![0.0f64; PROBE_LEN];
    let s = 3.0f64;
    let mut best = 0.0f64;
    for _ in 0..PROBE_REPS {
        let t0 = std::time::Instant::now();
        for ((av, &bv), &cv) in a.iter_mut().zip(&b).zip(&c) {
            *av = bv + s * cv;
        }
        let dt = t0.elapsed().as_secs_f64().max(1e-9);
        best = best.max(3.0 * 8.0 * PROBE_LEN as f64 / dt);
    }
    // keep the output observable so the triad loop cannot be optimized away
    std::hint::black_box(&a);
    best
}

/// The host roofline, measured once per process (or taken from the
/// `CLAIRE_DRAM_PEAK` environment variable — bytes/sec — when set, which
/// CI uses to pin the denominator on shared runners).
pub fn host_roofline() -> HostRoofline {
    static HOST: OnceLock<HostRoofline> = OnceLock::new();
    *HOST.get_or_init(|| {
        if let Some(bw) = std::env::var("CLAIRE_DRAM_PEAK")
            .ok()
            .and_then(|v| v.trim().parse::<f64>().ok())
            .filter(|&v| v > 0.0)
        {
            return HostRoofline { dram_bw: bw, probed: false };
        }
        HostRoofline { dram_bw: stream_triad_probe(), probed: true }
    })
}

/// Modeled DRAM bytes moved by **one call** of the named kernel family over
/// `points` local grid points with `real_bytes`-wide scalars. Pass counts
/// follow the §3 cost model and the kernels' actual loop structure:
///
/// | family          | passes | reasoning                                     |
/// |-----------------|--------|-----------------------------------------------|
/// | `fd`            | 2      | one derivative: read field, write output      |
/// | `field_ops`     | 3      | two-operand update (read x, read+write y);    |
/// |                 |        | fused update+reduce keeps the same 3 passes   |
/// |                 |        | where the unfused pair costs 5                |
/// | `interp`        | 2      | per query: gather (cached) + write value      |
/// | `fft_serial`    | 12.5   | [`crate::kernels::FFT_PASS_FACTOR`], complex  |
/// |                 |        | storage ≈ grid points of reals per transform  |
/// | `fft_dist`      | 4      | one distributed stage: 2-D planes or 1-D      |
/// |                 |        | pencils, strided read + write                 |
/// | `fft_transpose` | 2      | pack *or* unpack: read block, write block     |
/// | `semilag`       | 6      | RK2 stage streams 3-component points in + out |
///
/// Returns `None` for families without a meaningful streaming model
/// (`ghost` — message-sized, not field-sized).
pub fn kernel_traffic_bytes(name: &str, points: u64, real_bytes: u64) -> Option<f64> {
    let field = points as f64 * real_bytes as f64;
    let passes = match name {
        "fd" => 2.0,
        "field_ops" => 3.0,
        "interp" => 2.0,
        "fft_serial" => crate::kernels::FFT_PASS_FACTOR,
        "fft_dist" => 4.0,
        "fft_transpose" => 2.0,
        "semilag" => 6.0,
        _ => return None,
    };
    Some(passes * field)
}

/// A modeled kernel time split into compute and communication.
#[derive(Clone, Copy, Debug, Default, Serialize)]
pub struct KernelTime {
    /// Seconds of device compute.
    pub compute: f64,
    /// Seconds of communication (including waits).
    pub comm: f64,
}

impl KernelTime {
    /// Construct from parts.
    pub fn new(compute: f64, comm: f64) -> KernelTime {
        KernelTime { compute, comm }
    }

    /// Total seconds.
    pub fn total(&self) -> f64 {
        self.compute + self.comm
    }

    /// Communication share in percent (the "% comm" columns).
    pub fn comm_pct(&self) -> f64 {
        if self.total() <= 0.0 {
            0.0
        } else {
            100.0 * self.comm / self.total()
        }
    }

    /// Elementwise sum.
    pub fn add(&self, other: &KernelTime) -> KernelTime {
        KernelTime { compute: self.compute + other.compute, comm: self.comm + other.comm }
    }

    /// Scale both parts (e.g. by an invocation count).
    pub fn scale(&self, s: f64) -> KernelTime {
        KernelTime { compute: self.compute * s, comm: self.comm * s }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comm_pct() {
        let k = KernelTime::new(1.0, 3.0);
        assert!((k.comm_pct() - 75.0).abs() < 1e-12);
        assert!((k.total() - 4.0).abs() < 1e-12);
        let z = KernelTime::default();
        assert_eq!(z.comm_pct(), 0.0);
    }

    #[test]
    fn host_roofline_is_positive_and_cached() {
        let r1 = host_roofline();
        let r2 = host_roofline();
        assert!(r1.dram_bw > 0.0);
        assert_eq!(r1.dram_bw, r2.dram_bw, "probe must run once per process");
    }

    #[test]
    fn traffic_model_scales_with_points() {
        let fd1 = kernel_traffic_bytes("fd", 1000, 8).unwrap();
        let fd2 = kernel_traffic_bytes("fd", 2000, 8).unwrap();
        assert_eq!(fd2, 2.0 * fd1);
        assert_eq!(fd1, 2.0 * 1000.0 * 8.0);
        // fused field_ops keep 3 passes; the unfused pair costs 5
        assert_eq!(kernel_traffic_bytes("field_ops", 1000, 8), Some(3.0 * 1000.0 * 8.0));
        assert_eq!(kernel_traffic_bytes("ghost", 1000, 8), None);
        assert_eq!(kernel_traffic_bytes("unknown", 1000, 8), None);
    }

    #[test]
    fn longhorn_shape() {
        let m = Machine::longhorn();
        assert_eq!(m.gpus_per_node, 4);
        assert_eq!(m.topo(32).nnodes(), 8);
    }
}
