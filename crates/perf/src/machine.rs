//! Machine description and modeled kernel time splits.

use claire_mpi::model::{DeviceModel, LinkModel};
use claire_mpi::Topology;
use serde::Serialize;

/// A modeled cluster: device roofline + interconnect + node shape.
#[derive(Clone, Copy, Debug)]
pub struct Machine {
    /// Per-GPU roofline.
    pub device: DeviceModel,
    /// Interconnect α–β model (Table 4 calibration).
    pub link: LinkModel,
    /// GPUs per node (Longhorn: 4).
    pub gpus_per_node: usize,
}

impl Machine {
    /// TACC Longhorn, the paper's system.
    pub fn longhorn() -> Machine {
        Machine { device: DeviceModel::default(), link: LinkModel::default(), gpus_per_node: 4 }
    }

    /// Topology for `p` ranks on this machine.
    pub fn topo(&self, p: usize) -> Topology {
        Topology::new(p, self.gpus_per_node)
    }
}

/// A modeled kernel time split into compute and communication.
#[derive(Clone, Copy, Debug, Default, Serialize)]
pub struct KernelTime {
    /// Seconds of device compute.
    pub compute: f64,
    /// Seconds of communication (including waits).
    pub comm: f64,
}

impl KernelTime {
    /// Construct from parts.
    pub fn new(compute: f64, comm: f64) -> KernelTime {
        KernelTime { compute, comm }
    }

    /// Total seconds.
    pub fn total(&self) -> f64 {
        self.compute + self.comm
    }

    /// Communication share in percent (the "% comm" columns).
    pub fn comm_pct(&self) -> f64 {
        if self.total() <= 0.0 {
            0.0
        } else {
            100.0 * self.comm / self.total()
        }
    }

    /// Elementwise sum.
    pub fn add(&self, other: &KernelTime) -> KernelTime {
        KernelTime { compute: self.compute + other.compute, comm: self.comm + other.comm }
    }

    /// Scale both parts (e.g. by an invocation count).
    pub fn scale(&self, s: f64) -> KernelTime {
        KernelTime { compute: self.compute * s, comm: self.comm * s }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comm_pct() {
        let k = KernelTime::new(1.0, 3.0);
        assert!((k.comm_pct() - 75.0).abs() < 1e-12);
        assert!((k.total() - 4.0).abs() < 1e-12);
        let z = KernelTime::default();
        assert_eq!(z.comm_pct(), 0.0);
    }

    #[test]
    fn longhorn_shape() {
        let m = Machine::longhorn();
        assert_eq!(m.gpus_per_node, 4);
        assert_eq!(m.topo(32).nnodes(), 8);
    }
}
