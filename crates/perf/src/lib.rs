//! Calibrated performance model of CLAIRE on the paper's system.
//!
//! The evaluation hardware of the paper (TACC Longhorn: 96 nodes × 4
//! NVIDIA V100, NVLink + InfiniBand, IBM Spectrum MPI) is not available to
//! this reproduction, and neither are grids of 2048³ (25 B unknowns). This
//! crate regenerates the paper's *scaling* tables analytically:
//!
//! * kernel compute times from a DRAM-roofline model of the V100
//!   ([`claire_mpi::model::DeviceModel`]), using the paper's §3 operation
//!   counts (`cIP = 482·N/p` Lagrange / `30·N/p` linear, `cFD = 20·N/p`,
//!   FFT `O(N log N)` with a calibrated pass count);
//! * communication times from the α–β link model calibrated against the
//!   measured bandwidths of Table 4 ([`claire_mpi::LinkModel`]);
//! * whole-solver times from the paper's cost composition (eq. 10).
//!
//! The same communication-volume formulas are *validated* against the
//! byte-accurate traffic instrumentation of functional runs on the virtual
//! cluster (see `tests/model_validation.rs` at the workspace root), so the
//! model is anchored on both ends: measured paper numbers above, measured
//! in-process traffic below.
//!
//! [`paper`] embeds the published numbers of Tables 2–7 so the bench
//! harness can print *paper vs reproduced* side by side.

pub mod kernels;
pub mod machine;
pub mod paper;
pub mod solver;

pub use kernels::{fd_time, fft_pair_time, sl_phases, SlPhases};
pub use machine::{KernelTime, Machine};
pub use solver::{solver_time, SolverBreakdown, SolverCounts};
