//! Analytic kernel-time models at paper scale.
//!
//! Every model combines (a) the paper's §3 operation counts, (b) the V100
//! roofline, and (c) the Table 4 link model. Where sustained efficiency on
//! the real hardware deviates from the ideal roofline, a named calibration
//! constant is introduced; each constant is anchored on a *measured* value
//! from the paper (cited next to it). The scaling *shape* — what grows
//! with `N2·N3`, what stays flat, where communication overtakes compute —
//! comes from the formulas, not the constants.

use claire_mpi::model::AlltoallMethod;
use serde::Serialize;

use crate::machine::{KernelTime, Machine};

/// Field scalar size on the paper's system (single precision).
pub const WORD: f64 = 4.0;

/// Effective DRAM pass count per 3D real↔complex transform (includes
/// strided-access penalties of the x1/x2 passes).
/// Anchor: Table 5, 512³ single-GPU cuFFT pair = 16.9 ms.
pub const FFT_PASS_FACTOR: f64 = 12.5;

/// Extra inefficiency of transpose staging (pack/unpack, imbalance) on
/// top of the link model.
/// Anchors: Table 5, 512³ on 8 ranks = 24.5 ms pair; Table 7, 512³ on
/// 4 GPUs FFT = 7.33 s.
pub const FFT_COMM_FACTOR: f64 = 2.3;

/// Sustained fraction of peak FP32 for the cubic Lagrange kernel.
/// Anchor: Table 2, interp_kernel ≈ 17.7 ms for 256³·Nt=4 cubic advection.
pub const IP_EFFICIENCY: f64 = 0.45;

/// Sustained fraction for the trilinear kernel (texture-unit path).
pub const IP_LIN_EFFICIENCY: f64 = 0.25;

/// Effective x1 planes shipped per ghost exchange of the SL sweep
/// (stencil support + CFL displacement halo, both directions).
/// Anchor: Table 2, ghost_comm = 2.48 ms on 2 GPUs at 512×256².
pub const SL_GHOST_PLANES: f64 = 24.0;

/// Off-rank query-point planes per SL step (CFL-bounded displacement).
/// Anchor: Table 2, scatter_comm = 8.72e-3 s at 1024³ on 64 GPUs.
pub const SCATTER_PLANES: f64 = 0.9;

/// Effective streaming passes of the scatter-buffer construction
/// (`thrust::copy_if` with scattered access).
/// Anchor: Table 2, scatter_mpi_buffer ≈ 5.9–7.3 ms ≈ ⅓ of interp_kernel.
pub const SCATTER_BUF_PASSES: f64 = 3.3;

/// Effective link bandwidth cap for the SL exchanges (scattered packing
/// never reaches streaming link speed).
/// Anchor: Table 2, ghost_comm = 2.23e-2 s at 1024³ on 64 GPUs.
pub const SL_COMM_BW_CAP: f64 = 5.0e9;

/// Ghost-message efficiency for the FD halo exchange relative to NVLink
/// peak. Slab neighbours are predominantly intra-node (3 of 4 pairs on a
/// 4-GPU node), so halo traffic rides NVLink at every scale, at ~25%
/// streaming efficiency for these medium messages.
/// Anchors: Table 3, 512³ on 2 GPUs comm = 0.94 ms (8.4 MB → ~9 GB/s);
/// 1024³ on 64 GPUs comm = 2.85 ms (33.6 MB → ~12 GB/s).
pub const FD_GHOST_EFF: f64 = 0.25;

/// One distributed 3D FFT **pair** (forward + inverse), as Table 5 reports.
pub fn fft_pair_time(
    machine: &Machine,
    n: [usize; 3],
    p: usize,
    method: AlltoallMethod,
) -> KernelTime {
    let ncpx = n[0] as f64 * n[1] as f64 * (n[2] / 2 + 1) as f64;
    let compute = 2.0 * FFT_PASS_FACTOR * ncpx * 2.0 * WORD / machine.device.dram_bw / p as f64
        + 6.0 * machine.device.launch_overhead;
    let comm = if p <= 1 {
        0.0
    } else {
        // full local slab volume (the paper's Table 4 convention; the
        // retained self-block is negligible but keeps the P2P switch
        // aligned with the paper's shaded cells)
        let per_rank = (2.0 * WORD * ncpx / p as f64) as usize;
        let topo = machine.topo(p);
        2.0 * FFT_COMM_FACTOR * machine.link.alltoall_time(per_rank, &topo, method)
    };
    KernelTime::new(compute, comm)
}

/// One 8th-order FD gradient of a scalar field (Table 3's experiment).
pub fn fd_time(machine: &Machine, n: [usize; 3], p: usize) -> KernelTime {
    let nn = n[0] as f64 * n[1] as f64 * n[2] as f64;
    // three derivatives, each ~2 DRAM sweeps, 20 flops/point
    let bytes = 3.0 * 2.0 * nn * WORD / p as f64;
    let flops = 3.0 * 20.0 * nn / p as f64;
    let compute = (bytes / machine.device.dram_bw).max(flops / machine.device.flops)
        + 3.0 * machine.device.launch_overhead;
    let comm = if p <= 1 {
        0.0
    } else {
        // one halo exchange: 4 planes per side, neighbour traffic riding
        // NVLink at every scale (see FD_GHOST_EFF)
        let plane = n[1] as f64 * n[2] as f64 * WORD;
        let bytes = 2.0 * 4.0 * plane;
        bytes / (machine.link.bw_intra * FD_GHOST_EFF) + 2.0 * machine.link.lat_intra
    };
    KernelTime::new(compute, comm)
}

/// The five phases of one semi-Lagrangian advection solve (Table 2):
/// `Nt` steps of interpolating `nfields` scalars plus the RK2 trajectory.
#[derive(Clone, Copy, Debug, Default, Serialize)]
pub struct SlPhases {
    /// Halo exchange of the interpolated fields.
    pub ghost_comm: f64,
    /// Returning interpolated values.
    pub interp_comm: f64,
    /// Shipping off-rank query points.
    pub scatter_comm: f64,
    /// Stencil evaluation.
    pub interp_kernel: f64,
    /// Per-destination buffer construction.
    pub scatter_mpi_buffer: f64,
}

impl SlPhases {
    /// Total of all phases.
    pub fn total(&self) -> f64 {
        self.ghost_comm
            + self.interp_comm
            + self.scatter_comm
            + self.interp_kernel
            + self.scatter_mpi_buffer
    }

    /// Communication-only share.
    pub fn comm(&self) -> f64 {
        self.ghost_comm + self.interp_comm + self.scatter_comm
    }

    /// As a [`KernelTime`] (buffers count as compute).
    pub fn kernel_time(&self) -> KernelTime {
        KernelTime::new(self.interp_kernel + self.scatter_mpi_buffer, self.comm())
    }
}

/// Interpolation kernel flop count per query (paper §3.1).
pub fn ip_flops(cubic: bool) -> f64 {
    if cubic {
        482.0
    } else {
        30.0
    }
}

/// Model one semi-Lagrangian advection (Table 2's experiment: `Nt` steps,
/// one scalar field, plus the trajectory computation).
pub fn sl_phases(machine: &Machine, n: [usize; 3], p: usize, cubic: bool, nt: usize) -> SlPhases {
    let nn = n[0] as f64 * n[1] as f64 * n[2] as f64;
    let queries_per_step = nn / p as f64;
    // nt field interpolations + one RK2 trajectory (3 velocity components)
    let total_queries = (nt as f64 + 3.0) * queries_per_step;
    let eff = if cubic { IP_EFFICIENCY } else { IP_LIN_EFFICIENCY };
    let flop_time = total_queries * ip_flops(cubic) / (machine.device.flops * eff);
    let dram_time = total_queries * 2.0 * WORD / machine.device.dram_bw;
    let interp_kernel = flop_time.max(dram_time) + nt as f64 * machine.device.launch_overhead;

    let scatter_mpi_buffer = SCATTER_BUF_PASSES * total_queries * 3.0 * WORD
        / machine.device.dram_bw
        + nt as f64 * machine.device.launch_overhead;

    if p <= 1 {
        return SlPhases { interp_kernel, scatter_mpi_buffer, ..Default::default() };
    }

    let topo = machine.topo(p);
    let intra = topo.nnodes() == 1;
    let bw_eff = SL_COMM_BW_CAP;
    let lat = if intra { machine.link.lat_intra } else { machine.link.lat_inter };
    let plane = n[1] as f64 * n[2] as f64 * WORD;

    // per advection: one halo exchange of the field stack + CFL halo
    let ghost_bytes = SL_GHOST_PLANES * plane;
    let ghost_comm = ghost_bytes / bw_eff + 2.0 * lat;

    // off-rank queries: CFL-bounded boundary layer, each 3 coords out,
    // 1 value back, per step
    let scatter_bytes = nt as f64 * SCATTER_PLANES * plane * 3.0;
    let scatter_comm = scatter_bytes / bw_eff + nt as f64 * lat;
    // return path (1/3 volume) + imbalance (paper §3.1 obs. 2)
    let interp_comm = scatter_bytes / 3.0 / bw_eff + 0.5 * scatter_comm + nt as f64 * lat;

    SlPhases { ghost_comm, interp_comm, scatter_comm, interp_kernel, scatter_mpi_buffer }
}

#[cfg(test)]
mod tests {
    use super::*;
    use claire_mpi::model::AlltoallMethod;

    fn close(model: f64, paper: f64, factor: f64) -> bool {
        model > paper / factor && model < paper * factor
    }

    #[test]
    fn fft_single_gpu_anchor() {
        // Table 5: 512³ cuFFT 3D pair = 16.9 ms
        let m = Machine::longhorn();
        let t = fft_pair_time(&m, [512, 512, 512], 1, AlltoallMethod::Auto);
        assert!(close(t.total(), 16.9e-3, 1.5), "model {} vs paper 16.9 ms", t.total());
        assert_eq!(t.comm, 0.0);
    }

    #[test]
    fn fft_multi_rank_comm_dominates() {
        // Table 5 + §4.3: above one node, FFT time is dominated by the
        // all-to-all ("the runtime in FFTs is dominated by communication")
        let m = Machine::longhorn();
        let t = fft_pair_time(&m, [512, 512, 512], 8, AlltoallMethod::Auto);
        assert!(t.comm_pct() > 60.0, "%comm = {}", t.comm_pct());
        assert!(close(t.total(), 24.5e-3, 2.0), "model {} vs paper 24.5 ms", t.total());
    }

    #[test]
    fn fd_anchors() {
        let m = Machine::longhorn();
        // Table 3: 256³ 1 GPU kernel 6.32e-4; 512³ 4.82e-3
        let t1 = fd_time(&m, [256, 256, 256], 1);
        assert!(close(t1.total(), 6.32e-4, 1.8), "{}", t1.total());
        let t2 = fd_time(&m, [512, 512, 512], 1);
        assert!(close(t2.total(), 4.82e-3, 1.8), "{}", t2.total());
        // strong scaling: kernel shrinks, comm stays → %comm grows
        let t4 = fd_time(&m, [512, 512, 512], 4);
        let t16 = fd_time(&m, [512, 512, 512], 16);
        assert!(t16.comm_pct() > t4.comm_pct());
    }

    #[test]
    fn sl_kernel_anchor_and_weak_scaling() {
        let m = Machine::longhorn();
        // Table 2: 256³ single GPU, cubic, Nt=4 → interp_kernel 17.7 ms
        let s1 = sl_phases(&m, [256, 256, 256], 1, true, 4);
        assert!(close(s1.interp_kernel, 1.77e-2, 1.6), "{}", s1.interp_kernel);
        // weak scaling: kernel time stays flat, ghost volume doubles when
        // N2 or N3 doubles (paper obs. 1 and 3)
        let s2 = sl_phases(&m, [512, 256, 256], 2, true, 4);
        let s4 = sl_phases(&m, [512, 512, 256], 4, true, 4);
        assert!(close(s2.interp_kernel, s1.interp_kernel, 1.2));
        assert!(
            s4.ghost_comm > 1.5 * s2.ghost_comm,
            "ghost should ~double: {} vs {}",
            s4.ghost_comm,
            s2.ghost_comm
        );
    }

    #[test]
    fn sl_comm_dominates_beyond_16_gpus() {
        // paper obs. 3: kernel majority up to 16 GPUs, comm dominates beyond
        let m = Machine::longhorn();
        let s16 = sl_phases(&m, [1024, 512, 512], 16, true, 4);
        let s64 = sl_phases(&m, [1024, 1024, 1024], 64, true, 4);
        assert!(s64.comm() / s64.total() > s16.comm() / s16.total());
        assert!(s64.comm() > s64.interp_kernel, "comm should dominate at 64 GPUs");
    }
}
