//! The paper's published numbers (Tables 2–7), embedded for side-by-side
//! "paper vs reproduced" reporting in the bench harness and EXPERIMENTS.md.
//!
//! All values transcribed from Brunn et al., SC 2020 (arXiv:2008.12820).

/// One row of Table 2 (weak scaling of the semi-Lagrangian IP kernel,
/// cubic interpolation, Nt = 4; seconds).
#[derive(Clone, Copy, Debug)]
pub struct Table2Row {
    /// Grid size.
    pub size: [usize; 3],
    /// GPUs.
    pub gpus: usize,
    /// ghost_comm seconds.
    pub ghost_comm: f64,
    /// interp_comm seconds.
    pub interp_comm: f64,
    /// scatter_comm seconds.
    pub scatter_comm: f64,
    /// interp_kernel seconds.
    pub interp_kernel: f64,
    /// scatter_mpi_buffer seconds.
    pub scatter_mpi_buffer: f64,
    /// total seconds.
    pub total: f64,
}

/// Table 2 of the paper.
pub const TABLE2: [Table2Row; 7] = [
    Table2Row {
        size: [256, 256, 256],
        gpus: 1,
        ghost_comm: 0.0,
        interp_comm: 0.0,
        scatter_comm: 0.0,
        interp_kernel: 1.77e-2,
        scatter_mpi_buffer: 0.0,
        total: 1.90e-2,
    },
    Table2Row {
        size: [512, 256, 256],
        gpus: 2,
        ghost_comm: 2.48e-3,
        interp_comm: 1.71e-3,
        scatter_comm: 2.65e-4,
        interp_kernel: 1.79e-2,
        scatter_mpi_buffer: 5.88e-3,
        total: 3.28e-2,
    },
    Table2Row {
        size: [512, 512, 256],
        gpus: 4,
        ghost_comm: 3.49e-3,
        interp_comm: 1.80e-3,
        scatter_comm: 7.81e-4,
        interp_kernel: 1.76e-2,
        scatter_mpi_buffer: 7.16e-3,
        total: 3.53e-2,
    },
    Table2Row {
        size: [512, 512, 512],
        gpus: 8,
        ghost_comm: 7.51e-3,
        interp_comm: 3.62e-3,
        scatter_comm: 2.02e-3,
        interp_kernel: 1.76e-2,
        scatter_mpi_buffer: 6.63e-3,
        total: 4.18e-2,
    },
    Table2Row {
        size: [1024, 512, 512],
        gpus: 16,
        ghost_comm: 8.66e-3,
        interp_comm: 4.17e-3,
        scatter_comm: 2.85e-3,
        interp_kernel: 1.83e-2,
        scatter_mpi_buffer: 6.98e-3,
        total: 4.54e-2,
    },
    Table2Row {
        size: [1024, 1024, 512],
        gpus: 32,
        ghost_comm: 1.31e-2,
        interp_comm: 5.92e-3,
        scatter_comm: 5.42e-3,
        interp_kernel: 1.84e-2,
        scatter_mpi_buffer: 7.00e-3,
        total: 5.44e-2,
    },
    Table2Row {
        size: [1024, 1024, 1024],
        gpus: 64,
        ghost_comm: 2.23e-2,
        interp_comm: 9.73e-3,
        scatter_comm: 8.72e-3,
        interp_kernel: 1.87e-2,
        scatter_mpi_buffer: 7.30e-3,
        total: 7.13e-2,
    },
];

/// One row of Table 3 (FD kernel scaling; seconds).
#[derive(Clone, Copy, Debug)]
pub struct Table3Row {
    /// GPUs.
    pub gpus: usize,
    /// Grid size.
    pub size: [usize; 3],
    /// Ghost communication seconds.
    pub comm: f64,
    /// Kernel seconds.
    pub kernel: f64,
    /// Total seconds.
    pub total: f64,
}

/// Table 3 of the paper.
pub const TABLE3: [Table3Row; 7] = [
    Table3Row { gpus: 1, size: [256, 256, 256], comm: 0.0, kernel: 6.32e-4, total: 6.32e-4 },
    Table3Row { gpus: 1, size: [512, 512, 512], comm: 0.0, kernel: 4.82e-3, total: 4.82e-3 },
    Table3Row { gpus: 2, size: [512, 512, 512], comm: 9.37e-4, kernel: 3.33e-3, total: 4.27e-3 },
    Table3Row { gpus: 4, size: [512, 512, 512], comm: 7.01e-4, kernel: 1.70e-3, total: 2.40e-3 },
    Table3Row { gpus: 8, size: [512, 512, 512], comm: 9.86e-4, kernel: 8.66e-4, total: 1.85e-3 },
    Table3Row { gpus: 16, size: [512, 512, 512], comm: 8.94e-4, kernel: 4.60e-4, total: 1.35e-3 },
    Table3Row {
        gpus: 64,
        size: [1024, 1024, 1024],
        comm: 2.85e-3,
        kernel: 9.03e-4,
        total: 3.76e-3,
    },
];

/// One row-group of Table 4 (sustained bidirectional bandwidth, GB/s, for
/// vendor MPI and the P2P scheme over MPI task counts 4..128).
#[derive(Clone, Copy, Debug)]
pub struct Table4Row {
    /// Grid size the exchanged slab belongs to.
    pub size: [usize; 3],
    /// Vendor MPI bandwidth at [4, 8, 16, 32, 64, 128] tasks.
    pub mpi: [f64; 6],
    /// Peer-to-peer bandwidth at [4, 8, 16, 32, 64, 128] tasks.
    pub p2p: [f64; 6],
}

/// Table 4 of the paper.
pub const TABLE4: [Table4Row; 7] = [
    Table4Row {
        size: [256, 256, 256],
        mpi: [5.6, 5.0, 3.3, 2.2, 2.0, 1.5],
        p2p: [35.7, 9.3, 2.2, 1.3, 1.6, 1.4],
    },
    Table4Row {
        size: [512, 256, 256],
        mpi: [5.1, 5.2, 3.5, 1.5, 1.9, 1.9],
        p2p: [36.0, 9.5, 5.8, 1.0, 1.5, 1.4],
    },
    Table4Row {
        size: [512, 512, 256],
        mpi: [5.4, 4.6, 3.5, 2.8, 1.6, 2.7],
        p2p: [36.6, 9.9, 6.1, 0.4, 1.7, 1.4],
    },
    Table4Row {
        size: [512, 512, 512],
        mpi: [5.9, 4.9, 3.9, 2.7, 2.5, 2.7],
        p2p: [37.1, 9.5, 5.9, 4.7, 0.5, 1.5],
    },
    Table4Row {
        size: [1024, 512, 512],
        mpi: [6.4, 5.4, 3.9, 3.4, 3.2, 2.2],
        p2p: [32.6, 10.1, 5.9, 4.8, 0.4, 0.5],
    },
    Table4Row {
        size: [1024, 1024, 512],
        mpi: [6.7, 5.5, 4.2, 3.6, 3.4, 2.7],
        p2p: [36.6, 10.5, 5.4, 4.7, 4.5, 0.3],
    },
    Table4Row {
        size: [1024, 1024, 1024],
        mpi: [6.7, 5.6, 4.4, 3.7, 3.4, 3.1],
        p2p: [36.8, 10.6, 5.2, 4.6, 4.3, 0.4],
    },
];

/// MPI task counts of the Table 4/5 columns.
pub const TABLE45_TASKS: [usize; 6] = [4, 8, 16, 32, 64, 128];

/// One row of Table 5 (forward+inverse distributed FFT, milliseconds).
#[derive(Clone, Copy, Debug)]
pub struct Table5Row {
    /// Grid size.
    pub size: [usize; 3],
    /// Single-rank cuFFT 3D time (ms), if it fits.
    pub cufft3d: Option<f64>,
    /// Single-rank slab-transform time (ms), if it fits.
    pub slab1: Option<f64>,
    /// Slab transform at [4, 8, 16, 32, 64, 128] ranks (ms).
    pub ranks: [f64; 6],
}

/// Table 5 of the paper.
pub const TABLE5: [Table5Row; 7] = [
    Table5Row {
        size: [256, 256, 256],
        cufft3d: Some(1.41),
        slab1: Some(1.86),
        ranks: [2.83, 3.92, 4.17, 3.88, 2.93, 3.76],
    },
    Table5Row {
        size: [512, 256, 256],
        cufft3d: Some(3.20),
        slab1: Some(3.87),
        ranks: [5.39, 7.65, 7.33, 5.21, 4.09, 4.30],
    },
    Table5Row {
        size: [512, 512, 256],
        cufft3d: Some(7.30),
        slab1: Some(7.70),
        ranks: [8.48, 13.8, 13.3, 8.29, 5.67, 5.12],
    },
    Table5Row {
        size: [512, 512, 512],
        cufft3d: Some(16.9),
        slab1: Some(16.9),
        ranks: [15.6, 25.7, 24.5, 16.7, 9.63, 7.23],
    },
    Table5Row {
        size: [1024, 512, 512],
        cufft3d: Some(31.2),
        slab1: Some(40.1),
        ranks: [31.8, 51.3, 43.6, 31.3, 17.8, 11.8],
    },
    Table5Row {
        size: [1024, 1024, 512],
        cufft3d: None,
        slab1: None,
        ranks: [65.7, 100.0, 90.5, 54.2, 33.4, 21.4],
    },
    Table5Row {
        size: [1024, 1024, 1024],
        cufft3d: None,
        slab1: None,
        ranks: [132.0, 198.0, 182.0, 116.0, 62.0, 38.4],
    },
];

/// One row of Table 6 (full registrations; seconds; key columns).
#[derive(Clone, Copy, Debug)]
pub struct Table6Row {
    /// Dataset label.
    pub data: &'static str,
    /// Preconditioner label.
    pub pc: &'static str,
    /// Grid size.
    pub size: [usize; 3],
    /// GPUs.
    pub gpus: usize,
    /// Gauss–Newton iterations.
    pub gn: usize,
    /// Accumulated PCG iterations.
    pub pcg: usize,
    /// Relative mismatch.
    pub mismatch: f64,
    /// Relative gradient norm.
    pub grad_rel: f64,
    /// Total runtime (s).
    pub total: f64,
}

/// Selected rows of Table 6 (NIREP 256³ block and the largest runs).
pub const TABLE6: [Table6Row; 11] = [
    Table6Row {
        data: "na02",
        pc: "InvA",
        size: [256, 256, 256],
        gpus: 1,
        gn: 14,
        pcg: 75,
        mismatch: 2.73e-2,
        grad_rel: 3.09e-2,
        total: 6.19,
    },
    Table6Row {
        data: "na02",
        pc: "InvH0",
        size: [256, 256, 256],
        gpus: 1,
        gn: 14,
        pcg: 23,
        mismatch: 2.62e-2,
        grad_rel: 2.82e-2,
        total: 5.54,
    },
    Table6Row {
        data: "na02",
        pc: "2LInvH0",
        size: [256, 256, 256],
        gpus: 1,
        gn: 14,
        pcg: 28,
        mismatch: 2.79e-2,
        grad_rel: 3.23e-2,
        total: 4.44,
    },
    Table6Row {
        data: "na03",
        pc: "InvA",
        size: [256, 256, 256],
        gpus: 1,
        gn: 17,
        pcg: 93,
        mismatch: 2.55e-2,
        grad_rel: 3.11e-2,
        total: 7.53,
    },
    Table6Row {
        data: "na03",
        pc: "2LInvH0",
        size: [256, 256, 256],
        gpus: 1,
        gn: 17,
        pcg: 39,
        mismatch: 2.56e-2,
        grad_rel: 3.17e-2,
        total: 5.39,
    },
    Table6Row {
        data: "na10",
        pc: "InvA",
        size: [256, 256, 256],
        gpus: 1,
        gn: 17,
        pcg: 94,
        mismatch: 1.96e-2,
        grad_rel: 2.94e-2,
        total: 7.61,
    },
    Table6Row {
        data: "na10",
        pc: "2LInvH0",
        size: [256, 256, 256],
        gpus: 1,
        gn: 17,
        pcg: 38,
        mismatch: 1.93e-2,
        grad_rel: 2.90e-2,
        total: 5.45,
    },
    Table6Row {
        data: "na10",
        pc: "2LInvH0",
        size: [512, 512, 512],
        gpus: 4,
        gn: 18,
        pcg: 37,
        mismatch: 2.68e-2,
        grad_rel: 4.39e-2,
        total: 29.2,
    },
    Table6Row {
        data: "na10",
        pc: "2LInvH0",
        size: [1024, 1024, 1024],
        gpus: 32,
        gn: 22,
        pcg: 59,
        mismatch: 2.73e-2,
        grad_rel: 3.77e-2,
        total: 171.0,
    },
    Table6Row {
        data: "clarity",
        pc: "2LInvH0",
        size: [1024, 384, 384],
        gpus: 4,
        gn: 12,
        pcg: 75,
        mismatch: 2.02e-1,
        grad_rel: 4.54e-2,
        total: 43.6,
    },
    Table6Row {
        data: "clarity",
        pc: "InvH0",
        size: [1024, 768, 768],
        gpus: 16,
        gn: 15,
        pcg: 52,
        mismatch: 2.03e-1,
        grad_rel: 4.38e-2,
        total: 286.0,
    },
];

/// One row of Table 7 (full-solver scaling; seconds; % communication).
#[derive(Clone, Copy, Debug)]
pub struct Table7Row {
    /// Grid size.
    pub size: [usize; 3],
    /// Nodes.
    pub nodes: usize,
    /// GPUs.
    pub gpus: usize,
    /// FFT seconds / % comm.
    pub fft: (f64, f64),
    /// SL seconds / % comm.
    pub sl: (f64, f64),
    /// FD seconds / % comm.
    pub fd: (f64, f64),
    /// overall seconds / % comm.
    pub overall: (f64, f64),
    /// memory per GPU, GB.
    pub memory_gb: f64,
}

/// Table 7 of the paper (all rows).
pub const TABLE7: [Table7Row; 17] = [
    Table7Row {
        size: [128, 128, 128],
        nodes: 1,
        gpus: 1,
        fft: (1.03e-1, 0.0),
        sl: (1.82e-1, 0.0),
        fd: (6.12e-2, 0.0),
        overall: (5.11e-1, 0.0),
        memory_gb: 1.11,
    },
    Table7Row {
        size: [128, 128, 128],
        nodes: 1,
        gpus: 2,
        fft: (1.74e-1, 44.5),
        sl: (3.88e-1, 69.3),
        fd: (1.52e-1, 54.3),
        overall: (8.37e-1, 51.3),
        memory_gb: 0.95,
    },
    Table7Row {
        size: [128, 128, 128],
        nodes: 1,
        gpus: 4,
        fft: (2.35e-1, 59.8),
        sl: (4.13e-1, 76.4),
        fd: (1.44e-1, 62.0),
        overall: (9.17e-1, 59.5),
        memory_gb: 0.79,
    },
    Table7Row {
        size: [128, 128, 128],
        nodes: 2,
        gpus: 8,
        fft: (6.95e-1, 85.5),
        sl: (5.56e-1, 83.9),
        fd: (2.87e-1, 84.4),
        overall: (1.66, 78.4),
        memory_gb: 0.71,
    },
    Table7Row {
        size: [128, 128, 128],
        nodes: 4,
        gpus: 16,
        fft: (5.38e-1, 90.0),
        sl: (6.19e-1, 85.5),
        fd: (5.72e-1, 92.1),
        overall: (1.87, 82.3),
        memory_gb: 0.66,
    },
    Table7Row {
        size: [256, 256, 256],
        nodes: 1,
        gpus: 1,
        fft: (7.74e-1, 0.0),
        sl: (1.16, 0.0),
        fd: (3.72e-1, 0.0),
        overall: (3.32, 0.0),
        memory_gb: 5.09,
    },
    Table7Row {
        size: [256, 256, 256],
        nodes: 1,
        gpus: 4,
        fft: (9.84e-1, 74.7),
        sl: (8.20e-1, 66.5),
        fd: (3.20e-1, 45.4),
        overall: (2.56, 55.6),
        memory_gb: 1.95,
    },
    Table7Row {
        size: [256, 256, 256],
        nodes: 8,
        gpus: 32,
        fft: (1.36, 95.3),
        sl: (1.24, 91.4),
        fd: (3.59e-1, 84.0),
        overall: (3.15, 86.8),
        memory_gb: 0.78,
    },
    Table7Row {
        size: [512, 512, 512],
        nodes: 1,
        gpus: 4,
        fft: (7.33, 74.0),
        sl: (4.26, 60.6),
        fd: (1.62, 32.2),
        overall: (1.62e1, 52.5),
        memory_gb: 11.2,
    },
    Table7Row {
        size: [512, 512, 512],
        nodes: 2,
        gpus: 8,
        fft: (1.16e1, 90.0),
        sl: (2.76, 68.0),
        fd: (1.31, 56.4),
        overall: (1.73e1, 75.5),
        memory_gb: 5.84,
    },
    Table7Row {
        size: [512, 512, 512],
        nodes: 4,
        gpus: 16,
        fft: (1.02e1, 94.5),
        sl: (1.93, 74.5),
        fd: (1.05, 70.3),
        overall: (1.41e1, 83.9),
        memory_gb: 3.32,
    },
    Table7Row {
        size: [512, 512, 512],
        nodes: 8,
        gpus: 32,
        fft: (7.08, 94.3),
        sl: (1.56, 81.3),
        fd: (9.31e-1, 80.4),
        overall: (1.01e1, 85.9),
        memory_gb: 2.00,
    },
    Table7Row {
        size: [512, 512, 512],
        nodes: 16,
        gpus: 64,
        fft: (4.88, 96.8),
        sl: (1.58, 87.9),
        fd: (8.75e-1, 86.9),
        overall: (7.72, 89.1),
        memory_gb: 1.31,
    },
    Table7Row {
        size: [1024, 1024, 1024],
        nodes: 8,
        gpus: 32,
        fft: (4.06e1, 95.0),
        sl: (5.33, 73.4),
        fd: (2.85, 69.6),
        overall: (5.19e1, 85.7),
        memory_gb: 11.5,
    },
    Table7Row {
        size: [1024, 1024, 1024],
        nodes: 16,
        gpus: 64,
        fft: (2.44e1, 95.0),
        sl: (4.17, 81.9),
        fd: (2.48, 81.4),
        overall: (3.27e1, 87.4),
        memory_gb: 6.23,
    },
    Table7Row {
        size: [1024, 1024, 1024],
        nodes: 32,
        gpus: 128,
        fft: (1.47e1, 96.9),
        sl: (3.94, 89.2),
        fd: (2.20, 88.2),
        overall: (2.18e1, 90.2),
        memory_gb: 3.43,
    },
    Table7Row {
        size: [2048, 2048, 2048],
        nodes: 64,
        gpus: 256,
        fft: (5.18e1, 93.1),
        sl: (1.46e1, 92.4),
        fd: (5.89, 88.5),
        overall: (7.60e1, 88.1),
        memory_gb: 12.5,
    },
];

/// Fig. 3 qualitative expectations: accumulated outer-PCG iteration counts
/// to reach a 1e-6 relative residual at the true solution (read from the
/// convergence plots; approximate).
#[derive(Clone, Copy, Debug)]
pub struct Fig3Expectation {
    /// Regularization parameter of the column.
    pub beta: f64,
    /// InvA iterations (≫ the others; > 50 means "off the plot").
    pub inva_iters: usize,
    /// InvH0 iterations.
    pub invh0_iters: usize,
    /// 2LInvH0 iterations.
    pub two_level_iters: usize,
}

/// Fig. 3 reference behaviour (iterations roughly mesh-independent).
pub const FIG3: [Fig3Expectation; 3] = [
    Fig3Expectation { beta: 5e-1, inva_iters: 18, invh0_iters: 7, two_level_iters: 7 },
    Fig3Expectation { beta: 1e-1, inva_iters: 35, invh0_iters: 10, two_level_iters: 10 },
    Fig3Expectation { beta: 5e-2, inva_iters: 50, invh0_iters: 12, two_level_iters: 13 },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_are_consistent() {
        // Table 2 totals ≈ sum of phases
        for r in &TABLE2 {
            let sum = r.ghost_comm
                + r.interp_comm
                + r.scatter_comm
                + r.interp_kernel
                + r.scatter_mpi_buffer;
            // the published totals include a small unattributed remainder
            assert!((sum - r.total).abs() / r.total < 0.2, "{:?}", r.size);
        }
        // Table 3 totals = comm + kernel
        for r in &TABLE3 {
            assert!((r.comm + r.kernel - r.total).abs() / r.total < 0.02);
        }
        // Table 7 overall >= each kernel
        for r in &TABLE7 {
            assert!(r.overall.0 >= r.fft.0.max(r.sl.0).max(r.fd.0) * 0.99);
        }
    }

    #[test]
    fn paper_headline_facts() {
        // 256³ single-GPU registration ≈ 5 s (2LInvH0: 4.44 s)
        assert!(TABLE6[2].total < 5.0);
        // InvH0 variants slash PCG iterations ~2-3×
        assert!(TABLE6[0].pcg as f64 / TABLE6[2].pcg as f64 > 2.0);
        // largest run: 2048³ on 256 GPUs
        let last = TABLE7.last().unwrap();
        assert_eq!(last.size, [2048, 2048, 2048]);
        assert_eq!(last.gpus, 256);
    }
}
