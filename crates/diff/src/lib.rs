//! Differential operators for CLAIRE-rs.
//!
//! Two families of operators, mirroring the paper's mixed discretization:
//!
//! * [`fd`] — **8th-order central finite differences** for all first-order
//!   derivatives (gradient, divergence). The paper replaced the CPU code's
//!   spectral first derivatives with this FD scheme because it is more
//!   accurate at the considered resolutions *and* needs only an O(N2·N3)
//!   ghost-layer exchange instead of a global transpose (§3.2).
//! * [`spectral`] — **spectral operators** for everything that must be
//!   inverted: the H1 regularization operator `βA`, its inverse, the
//!   Laplacian, the Leray projection, and Gaussian smoothing. "In spectral
//!   methods, inverting higher order differential operators can be done at
//!   the cost of two FFTs and a Hadamard product."
//! * [`coarse`] — spectral restriction / prolongation / high-pass between a
//!   fine grid and its half-resolution coarse grid, the machinery of the
//!   two-level preconditioner `2LInvH0` (Algorithm 1).
//!
//! All operators run on slab-distributed fields through a [`Comm`] and work
//! unchanged in serial (solo communicator).
//!
//! [`Comm`]: claire_mpi::Comm

pub mod coarse;
pub mod fd;
pub mod spectral;

pub use coarse::{TwoLevel, TwoLevelT};
pub use spectral::{Spectral, SpectralT};
