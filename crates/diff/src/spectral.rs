//! Spectral operators: regularization, Laplacian, Leray projection.
//!
//! The regularization operator `A` and its inverse are applied in the
//! spectral domain "at the cost of two FFTs and a Hadamard product" (§2).
//! With `Ω = [0, 2π)³` the wavenumbers are integers, and the H1-Sobolev
//! regularization operator has the symbol `β(|k|² + 1)`.
//!
//! The Hadamard product is **fused into the inverse transform**: instead of
//! a standalone pass multiplying every spectral coefficient by the symbol
//! and a second pass gathering them for the x1 inverse FFT, the symbol is
//! applied as each coefficient is first gathered
//! ([`DistFftT::inverse_scaled`]) — one sweep over the spectral array
//! instead of two, with bit-identical results.
//!
//! Note on the zero mode: the paper uses an H1 *seminorm* (`A` = vector
//! Laplacian) whose kernel (constant fields) is handled by the additional
//! penalties; we lift the symbol by `+1` (full H1 norm) so `A` is SPD and
//! `(βA)⁻¹` is well-defined — identical behaviour for all non-constant
//! modes. This substitution is recorded in DESIGN.md §5.

use claire_fft::{CpxT, DistFftT, DistSpectralT, FftElem};
use claire_grid::{Grid, Real, ScalarFieldT, VectorFieldT};
use claire_mpi::Comm;

/// Planned spectral operators on one grid for one rank, generic over the
/// element width (f64 solver path or f32 mixed-precision inner solve).
pub struct SpectralT<T: FftElem> {
    fft: DistFftT<T>,
    grid: Grid,
}

/// Field-precision ([`Real`]) spectral operators.
pub type Spectral = SpectralT<Real>;

impl<T: FftElem> SpectralT<T> {
    /// Plan for `grid` on the calling rank of `comm`.
    pub fn new(grid: Grid, comm: &Comm) -> SpectralT<T> {
        SpectralT { fft: DistFftT::new(grid, comm), grid }
    }

    /// The grid.
    pub fn grid(&self) -> Grid {
        self.grid
    }

    /// Access the underlying FFT plan.
    pub fn fft(&self) -> &DistFftT<T> {
        &self.fft
    }

    /// Apply a real symbol `σ(|k|²)`: `f ↦ F⁻¹[ σ(k²) · F f ]`.
    ///
    /// Two FFTs and a Hadamard product, as in the paper — with the Hadamard
    /// fused into the inverse's first gather pass. Collective.
    pub fn apply_ksq_symbol(
        &self,
        f: &ScalarFieldT<T>,
        comm: &mut Comm,
        sym: impl Fn(f64) -> f64 + Sync,
    ) -> ScalarFieldT<T> {
        let spec = self.fft.forward(f, comm);
        self.charge_hadamard(comm, 1);
        let g = self.grid;
        let scale = move |i: usize, j: usize, k: usize| {
            let k1 = g.wavenumber(0, i) as f64;
            let k2 = g.wavenumber(1, j) as f64;
            let k3 = k as f64;
            T::from_f64(sym(k1 * k1 + k2 * k2 + k3 * k3))
        };
        self.fft.inverse_scaled(spec, comm, &scale)
    }

    /// Modeled cost of `n` spectral Hadamard sweeps (DRAM-bound, at the
    /// actual element width).
    fn charge_hadamard(&self, comm: &mut Comm, n: usize) {
        let words = self.grid.len() / comm.size().max(1);
        comm.advance_kernel(n * words * std::mem::size_of::<CpxT<T>>(), 4 * n * words);
    }

    /// Laplacian `Δf` (spectral; used for verification and smoothing).
    pub fn laplacian(&self, f: &ScalarFieldT<T>, comm: &mut Comm) -> ScalarFieldT<T> {
        self.apply_ksq_symbol(f, comm, |ksq| -ksq)
    }

    /// Apply the regularization operator `βA = β(I − Δ)` to each component.
    pub fn reg_apply(&self, v: &VectorFieldT<T>, beta: f64, comm: &mut Comm) -> VectorFieldT<T> {
        VectorFieldT {
            c: std::array::from_fn(|d| {
                self.apply_ksq_symbol(&v.c[d], comm, |ksq| beta * (1.0 + ksq))
            }),
        }
    }

    /// Apply `(βA)⁻¹` to each component — the `InvA` preconditioner (eq. 8)
    /// and the left-preconditioner inside `InvH0`.
    pub fn reg_inv(&self, v: &VectorFieldT<T>, beta: f64, comm: &mut Comm) -> VectorFieldT<T> {
        VectorFieldT {
            c: std::array::from_fn(|d| {
                self.apply_ksq_symbol(&v.c[d], comm, |ksq| 1.0 / (beta * (1.0 + ksq)))
            }),
        }
    }

    /// Scalar version of [`SpectralT::reg_apply`].
    pub fn reg_apply_scalar(
        &self,
        f: &ScalarFieldT<T>,
        beta: f64,
        comm: &mut Comm,
    ) -> ScalarFieldT<T> {
        self.apply_ksq_symbol(f, comm, |ksq| beta * (1.0 + ksq))
    }

    /// Scalar version of [`SpectralT::reg_inv`].
    pub fn reg_inv_scalar(
        &self,
        f: &ScalarFieldT<T>,
        beta: f64,
        comm: &mut Comm,
    ) -> ScalarFieldT<T> {
        self.apply_ksq_symbol(f, comm, |ksq| 1.0 / (beta * (1.0 + ksq)))
    }

    /// Apply a general per-mode real symbol `σ(k1, k2, k3)` (signed integer
    /// wavenumbers). Two FFTs with the Hadamard fused into the inverse.
    /// Collective.
    pub fn apply_mode_symbol(
        &self,
        f: &ScalarFieldT<T>,
        comm: &mut Comm,
        sym: impl Fn([isize; 3]) -> f64 + Sync,
    ) -> ScalarFieldT<T> {
        let spec = self.fft.forward(f, comm);
        self.charge_hadamard(comm, 1);
        let g = self.grid;
        let scale = move |i: usize, j: usize, k: usize| {
            T::from_f64(sym([g.wavenumber(0, i), g.wavenumber(1, j), k as isize]))
        };
        self.fft.inverse_scaled(spec, comm, &scale)
    }

    /// Cubic B-spline prefilter: convert image samples to B-spline
    /// coefficients by deconvolving the sampled B-spline kernel
    /// `[1/6, 4/6, 1/6]` per axis (symbol `(2 + cos(2πk/n))/3`).
    ///
    /// This is the step that makes `GPU-TXTSPL` interpolation exact on the
    /// grid — and the reason the paper avoids the spline kernel in the
    /// distributed solver: the prefilter needs global data (an extra ghost
    /// exchange in their recursive implementation; a full FFT pair here),
    /// whereas `GPU-TXTLAG` reads raw samples (§3.1). Collective.
    pub fn bspline_prefilter(&self, f: &ScalarFieldT<T>, comm: &mut Comm) -> ScalarFieldT<T> {
        let n = self.grid.n;
        let axis = |k: isize, nd: usize| -> f64 {
            let theta = 2.0 * std::f64::consts::PI * k as f64 / nd as f64;
            (2.0 + theta.cos()) / 3.0
        };
        self.apply_mode_symbol(f, comm, move |k| {
            1.0 / (axis(k[0], n[0]) * axis(k[1], n[1]) * axis(k[2], n[2]))
        })
    }

    /// Gaussian smoothing `exp(−σ²|k|²/2)` — used for image preprocessing
    /// and phantom generation.
    pub fn gauss_smooth(
        &self,
        f: &ScalarFieldT<T>,
        sigma: f64,
        comm: &mut Comm,
    ) -> ScalarFieldT<T> {
        self.apply_ksq_symbol(f, comm, |ksq| (-0.5 * sigma * sigma * ksq).exp())
    }

    /// Leray projection onto divergence-free fields:
    /// `v ↦ v − ∇Δ⁻¹(∇·v)`, i.e. `v̂ ↦ v̂ − k (k·v̂)/|k|²`.
    ///
    /// This is the projection CLAIRE uses for the incompressibility penalty
    /// (§1.1, [48]). The three spectra couple per mode, so this one keeps
    /// an explicit spectral pass instead of the fused symbol. Collective.
    pub fn leray(&self, v: &VectorFieldT<T>, comm: &mut Comm) -> VectorFieldT<T> {
        let mut specs: [DistSpectralT<T>; 3] = [0, 1, 2].map(|d| self.fft.forward(&v.c[d], comm));
        let g = self.grid;
        let n3c = specs[0].n3c();
        let nj = specs[0].x2_slab.ni;
        for i in 0..g.n[0] {
            let k1f = g.wavenumber(0, i) as f64;
            let k1 = T::from_f64(k1f);
            for jl in 0..nj {
                let k2f = g.wavenumber(1, specs[0].j_global(jl)) as f64;
                let k2 = T::from_f64(k2f);
                let base = (i * nj + jl) * n3c;
                for k in 0..n3c {
                    let k3f = k as f64;
                    let k3 = T::from_f64(k3f);
                    let ksq = k1f * k1f + k2f * k2f + k3f * k3f;
                    if ksq == 0.0 {
                        continue;
                    }
                    let dot = specs[0].data[base + k].scale(k1)
                        + specs[1].data[base + k].scale(k2)
                        + specs[2].data[base + k].scale(k3);
                    let proj = dot.scale(T::from_f64(1.0 / ksq));
                    specs[0].data[base + k] = specs[0].data[base + k] - proj.scale(k1);
                    specs[1].data[base + k] = specs[1].data[base + k] - proj.scale(k2);
                    specs[2].data[base + k] = specs[2].data[base + k] - proj.scale(k3);
                }
            }
        }
        self.charge_hadamard(comm, 3);
        let [s0, s1, s2] = specs;
        VectorFieldT {
            c: [self.fft.inverse(s0, comm), self.fft.inverse(s1, comm), self.fft.inverse(s2, comm)],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use claire_grid::{Layout, ScalarField, VectorField, WsCat};
    use claire_mpi::{run_cluster, Topology};

    #[test]
    fn laplacian_of_eigenfunction() {
        let grid = Grid::cube(16);
        let layout = Layout::serial(grid);
        let mut comm = Comm::solo();
        let sp = Spectral::new(grid, &comm);
        // Δ sin(2 x1) = -4 sin(2 x1)
        let f = ScalarField::from_fn(layout, |x, _, _| (2.0 * x).sin());
        let lap = sp.laplacian(&f, &mut comm);
        let mut expect = f.clone();
        expect.scale(-4.0);
        let err =
            lap.data().iter().zip(expect.data()).map(|(&a, &b)| (a - b).abs()).fold(0.0, f64::max);
        assert!(err < 1e-8, "err {err}");
    }

    #[test]
    fn f32_reg_inv_tracks_f64() {
        // The f32 spectral operators (the mixed-precision inner solve's
        // preconditioner) must track the f64 path to single precision.
        let grid = Grid::cube(8);
        let layout = Layout::serial(grid);
        let mut comm = Comm::solo();
        let sp64 = Spectral::new(grid, &comm);
        let sp32 = SpectralT::<f32>::new(grid, &comm);
        let f = ScalarField::from_fn(layout, |x, y, z| (x + y).sin() + (2.0 * z).cos());
        let out64 = sp64.reg_inv_scalar(&f, 0.05, &mut comm);
        let f32_in: ScalarFieldT<f32> = f.converted(WsCat::Fft);
        let out32 = sp32.reg_inv_scalar(&f32_in, 0.05, &mut comm);
        let err = out32
            .data()
            .iter()
            .zip(out64.data())
            .map(|(&a, &b)| (a as f64 - b).abs())
            .fold(0.0, f64::max);
        assert!(err < 1e-5, "f32 spectral path diverged: {err}");
    }

    #[test]
    fn reg_inverse_is_inverse() {
        let grid = Grid::cube(8);
        let layout = Layout::serial(grid);
        let mut comm = Comm::solo();
        let sp = Spectral::new(grid, &comm);
        let v = VectorField::from_fns(
            layout,
            |x, y, _| (x + y).sin(),
            |_, y, z| (y * 2.0).cos() + z,
            |x, _, z| (z - x).sin(),
        );
        let beta = 0.05;
        let av = sp.reg_apply(&v, beta, &mut comm);
        let back = sp.reg_inv(&av, beta, &mut comm);
        for d in 0..3 {
            let err = back.c[d]
                .data()
                .iter()
                .zip(v.c[d].data())
                .map(|(&a, &b)| (a - b).abs())
                .fold(0.0, f64::max);
            assert!(err < 1e-8, "component {d}: err {err}");
        }
    }

    #[test]
    fn reg_is_spd() {
        let grid = Grid::cube(8);
        let layout = Layout::serial(grid);
        let mut comm = Comm::solo();
        let sp = Spectral::new(grid, &comm);
        let v = VectorField::from_fns(
            layout,
            |x, _, _| x.sin(),
            |_, y, _| (2.0 * y).cos(),
            |_, _, z| z.cos(),
        );
        let w = VectorField::from_fns(
            layout,
            |x, y, _| (x - y).cos(),
            |_, _, z| z.sin(),
            |x, _, _| 1.0 + 0.0 * x,
        );
        let beta = 0.1;
        let av = sp.reg_apply(&v, beta, &mut comm);
        let aw = sp.reg_apply(&w, beta, &mut comm);
        let vav = v.inner(&av, &mut comm);
        let vaw = v.inner(&aw, &mut comm);
        let wav = w.inner(&av, &mut comm);
        assert!(vav > 0.0, "positive definite");
        assert!((vaw - wav).abs() < 1e-8 * vaw.abs().max(1.0), "symmetric: {vaw} vs {wav}");
    }

    #[test]
    fn leray_output_is_divergence_free() {
        let grid = Grid::cube(16);
        let layout = Layout::serial(grid);
        let mut comm = Comm::solo();
        let sp = Spectral::new(grid, &comm);
        let v = VectorField::from_fns(
            layout,
            |x, y, _| (x + y).sin(),
            |x, y, z| (y + z).cos() * x.sin(),
            |x, _, z| (z * 2.0).sin() + x.cos(),
        );
        let pv = sp.leray(&v, &mut comm);
        let div = crate::fd::divergence(&pv, &mut comm);
        let m = div.max_abs(&mut comm);
        // FD divergence of a spectrally div-free field: truncation-level small
        assert!(m < 1e-3, "divergence after Leray: {m}");
        // projection is idempotent
        let ppv = sp.leray(&pv, &mut comm);
        let d = {
            let mut t = ppv.clone();
            t.axpy(-1.0, &pv);
            t.norm_l2(&mut comm)
        };
        assert!(d < 1e-8, "idempotency defect {d}");
    }

    #[test]
    fn bspline_prefilter_makes_spline_exact_on_grid() {
        use claire_interp::kernel::interp_serial;
        use claire_interp::IpOrder;
        let grid = Grid::cube(16);
        let layout = Layout::serial(grid);
        let mut comm = Comm::solo();
        let sp = Spectral::new(grid, &comm);
        let f = ScalarField::from_fn(layout, |x, y, z| x.sin() * y.cos() + (0.5 * z).sin());
        let coef = sp.bspline_prefilter(&f, &mut comm);
        let h = grid.spacing();
        // at grid points, spline-on-coefficients must reproduce the samples
        for &(i, j, k) in &[(0usize, 0usize, 0usize), (3, 7, 11), (15, 1, 8)] {
            let x = [
                i as claire_grid::Real * h[0],
                j as claire_grid::Real * h[1],
                k as claire_grid::Real * h[2],
            ];
            let v = interp_serial(&coef, IpOrder::CubicSpline, x);
            let raw = interp_serial(&f, IpOrder::CubicSpline, x); // no prefilter: blurred
            assert!(((v - f.at(i, j, k)) as f64).abs() < 1e-8, "prefiltered spline exact: {v}");
            assert!(
                ((raw - f.at(i, j, k)) as f64).abs() > 1e-3,
                "without the prefilter the spline blurs grid samples"
            );
        }
        // off-grid: prefiltered spline tracks the analytic function
        let probe = [1.234 as claire_grid::Real, 2.345, 3.456];
        let exact = probe[0].sin() * probe[1].cos() + (0.5 * probe[2]).sin();
        let v = interp_serial(&coef, IpOrder::CubicSpline, probe);
        assert!(
            ((v - exact) as f64).abs() < 5e-4,
            "spline off-grid error {}",
            ((v - exact) as f64).abs()
        );
    }

    #[test]
    fn distributed_matches_serial() {
        let grid = Grid::new([8, 8, 8]);
        let mut comm = Comm::solo();
        let sp = Spectral::new(grid, &comm);
        let f = ScalarField::from_fn(Layout::serial(grid), |x, y, z| (x + y).sin() + (z).cos());
        let serial = sp.reg_inv_scalar(&f, 0.1, &mut comm);
        let expect = serial.data().to_vec();
        let res = run_cluster(Topology::new(4, 4), move |comm| {
            let layout = Layout::distributed(grid, comm);
            let f = ScalarField::from_fn(layout, |x, y, z| (x + y).sin() + (z).cos());
            let sp = Spectral::new(grid, comm);
            let out = sp.reg_inv_scalar(&f, 0.1, comm);
            claire_grid::redist::gather(&out, comm).map(|g| g.into_data())
        });
        let got = res.outputs[0].as_ref().unwrap();
        for (a, b) in got.iter().zip(&expect) {
            assert!((a - b).abs() < 1e-9);
        }
    }
}
