//! 8th-order central finite differences for first derivatives (§3.2).
//!
//! CLAIRE's GPU version computes gradient and divergence with an 8th-order
//! central stencil instead of spectral differentiation: more accurate at the
//! considered resolutions and much cheaper to parallelize — only a 4-plane
//! ghost-layer exchange along the slab dimension (`ghost_comm`) instead of a
//! global transpose. Derivatives along x2/x3 are rank-local (the slab
//! decomposition only splits x1).
//!
//! Execution model: the stencil sweep is embarrassingly parallel over output
//! points. Like the GPU implementation (one thread per output element), the
//! loops here split the output into `x1`-planes (dim 0/1) or `x3`-rows
//! (dim 2) and hand contiguous blocks of them to worker threads via
//! `claire-par`. The ghost exchange stays a serial collective — it is the
//! `ghost_comm` phase, not kernel compute. Hot loops should hold an
//! [`FdScratch`] and call [`deriv_into`]/[`gradient_into`] to avoid
//! reallocating the ghost halo and output fields on every application.
//!
//! Within a worker, every sweep is expressed as contiguous-x3-row combines
//! on the runtime-dispatched SIMD layer (`claire_simd::fd8_combine`): the
//! x1 sweep reads 8 neighbouring ghost-storage rows, the x2 sweep 8
//! periodic neighbour rows, and the x3 sweep vectorizes its interior with
//! shifted views of the row, keeping only the 4-point wrap at each end on
//! the scalar path.

use std::cell::RefCell;

use claire_grid::ghost::{self, GhostField};
use claire_grid::{Real, ScalarField, VectorField};
use claire_mpi::Comm;
use claire_par::par_chunks_mut;
use claire_par::timing::{self, Kernel};

/// Stencil coefficients `c_m` of the 8th-order central first derivative:
/// `f'(x) ≈ (1/h) Σ_{m=1..4} c_m (f(x+mh) − f(x−mh))`.
pub const FD8: [Real; 4] = [4.0 / 5.0, -1.0 / 5.0, 4.0 / 105.0, -1.0 / 280.0];

/// Halo width of the stencil (planes per side).
pub const FD8_WIDTH: usize = 4;

/// Reusable buffers for repeated derivative applications: the ghost halo for
/// dim-0 sweeps and a temporary field for [`divergence_into`]. One scratch
/// per layout; buffers are (re)allocated lazily on first use or layout change.
#[derive(Debug, Default)]
pub struct FdScratch {
    ghost: Option<GhostField>,
    tmp: Option<ScalarField>,
}

impl FdScratch {
    /// Empty scratch; buffers are allocated on first use.
    pub fn new() -> FdScratch {
        FdScratch::default()
    }

    fn ghost_for(&mut self, f: &ScalarField) -> &mut GhostField {
        let fits =
            self.ghost.as_ref().is_some_and(|g| g.layout() == f.layout() && g.width() == FD8_WIDTH);
        if !fits {
            self.ghost = Some(GhostField::alloc(*f.layout(), FD8_WIDTH));
        }
        self.ghost.as_mut().unwrap()
    }
}

// The convenience wrappers (`deriv`, `gradient`, `divergence`) share one
// thread-local scratch so repeated calls reuse the ghost halo and temporary
// field instead of re-allocating them — the non-`_into` API no longer
// breaks the zero-alloc story when used from examples or tests.
thread_local! {
    static WRAPPER_SCRATCH: RefCell<FdScratch> = RefCell::new(FdScratch::new());
}

fn with_wrapper_scratch<R>(f: impl FnOnce(&mut FdScratch) -> R) -> R {
    WRAPPER_SCRATCH.with(|s| match s.try_borrow_mut() {
        Ok(mut scratch) => f(&mut scratch),
        // re-entrant call (defensive): fall back to a fresh scratch
        Err(_) => f(&mut FdScratch::new()),
    })
}

/// Partial derivative `∂f/∂x_dim` (dim ∈ {0,1,2}); collective over `comm`
/// when `dim == 0` (ghost exchange), local otherwise. Allocates the output;
/// the halo comes from a pooled thread-local scratch. Hot loops should
/// still use [`deriv_into`] with their own scratch.
pub fn deriv(f: &ScalarField, dim: usize, comm: &mut Comm) -> ScalarField {
    let mut out = ScalarField::zeros(*f.layout());
    with_wrapper_scratch(|scratch| deriv_into(f, dim, comm, &mut out, scratch));
    out
}

/// Allocation-free partial derivative: writes `∂f/∂x_dim` into `out`, reusing
/// the halo buffer in `scratch`. Collective when `dim == 0`.
pub fn deriv_into(
    f: &ScalarField,
    dim: usize,
    comm: &mut Comm,
    out: &mut ScalarField,
    scratch: &mut FdScratch,
) {
    // `inv_h · 1.0 == inv_h` exactly, so delegating to the scaled kernel
    // with `s = 1` is bit-identical to the historical unscaled sweep.
    deriv_scaled_into(f, dim, comm, out, scratch, 1.0 as Real);
}

/// Allocation-free *scaled* partial derivative: writes `s · ∂f/∂x_dim` into
/// `out` in the same stencil sweep (the scale folds into the `1/h` factor
/// already applied per point, so it costs nothing). Lets consumers that
/// immediately rescale a derivative — e.g. the `½·dt·(∇·v)` term of the
/// semi-Lagrangian adjoint — drop a whole extra pass over memory.
/// Collective when `dim == 0`.
pub fn deriv_scaled_into(
    f: &ScalarField,
    dim: usize,
    comm: &mut Comm,
    out: &mut ScalarField,
    scratch: &mut FdScratch,
    s: Real,
) {
    assert!(dim < 3);
    let layout = *f.layout();
    assert_eq!(out.layout(), &layout, "output layout mismatch");
    let g = layout.grid;
    let inv_h = 1.0 as Real / g.spacing()[dim];
    let [_, n2, n3] = layout.local_dims();
    let plane = n2 * n3;

    match dim {
        0 => {
            let gf = scratch.ghost_for(f);
            ghost::exchange_into(f, comm, gf);
            let gd = gf.data();
            timing::time(Kernel::Fd, || {
                // rows (fixed storage plane, fixed j) are contiguous in x3,
                // so each output row is one vectorized 8-row combine
                par_chunks_mut(out.data_mut(), plane, |il, o| {
                    let sp = il + FD8_WIDTH; // storage plane of owned plane il
                    for j in 0..n2 {
                        let row = |p: usize| &gd[(p * n2 + j) * n3..(p * n2 + j) * n3 + n3];
                        let plus = [row(sp + 1), row(sp + 2), row(sp + 3), row(sp + 4)];
                        let minus = [row(sp - 1), row(sp - 2), row(sp - 3), row(sp - 4)];
                        claire_simd::fd8_combine_scale(
                            &mut o[j * n3..(j + 1) * n3],
                            &plus,
                            &minus,
                            &FD8,
                            inv_h,
                            s,
                        );
                    }
                });
            });
        }
        1 => {
            let src = f.data();
            timing::time(Kernel::Fd, || {
                par_chunks_mut(out.data_mut(), plane, |il, o| {
                    for j in 0..n2 {
                        // periodic neighbour rows in x2: (j ± (m+1)) mod n2
                        let mut rows_p = [0usize; 4];
                        let mut rows_m = [0usize; 4];
                        for m in 0..4 {
                            let d = (m + 1) % n2;
                            rows_p[m] = (il * n2 + (j + d) % n2) * n3;
                            rows_m[m] = (il * n2 + (j + n2 - d) % n2) * n3;
                        }
                        let plus = std::array::from_fn(|m| &src[rows_p[m]..rows_p[m] + n3]);
                        let minus = std::array::from_fn(|m| &src[rows_m[m]..rows_m[m] + n3]);
                        claire_simd::fd8_combine_scale(
                            &mut o[j * n3..(j + 1) * n3],
                            &plus,
                            &minus,
                            &FD8,
                            inv_h,
                            s,
                        );
                    }
                });
            });
        }
        _ => {
            let src = f.data();
            let ihs = inv_h * s;
            timing::time(Kernel::Fd, || {
                par_chunks_mut(out.data_mut(), n3, |row, o| {
                    let sr = &src[row * n3..(row + 1) * n3];
                    let wrap = |o: &mut [Real], ks: std::ops::Range<usize>| {
                        for k in ks {
                            let mut acc = 0.0 as Real;
                            for (m, &c) in FD8.iter().enumerate() {
                                let d = m + 1;
                                let kp = (k + d) % n3;
                                let km = (k + n3 - d % n3) % n3;
                                acc += c * (sr[kp] - sr[km]);
                            }
                            o[k] = acc * ihs;
                        }
                    };
                    if n3 >= 2 * FD8_WIDTH {
                        // periodic wrap only touches 4 points per end; the
                        // interior reads contiguous shifted views of the row
                        wrap(o, 0..FD8_WIDTH);
                        wrap(o, n3 - FD8_WIDTH..n3);
                        let plus = [&sr[5..], &sr[6..], &sr[7..], &sr[8..]];
                        let minus = [&sr[3..], &sr[2..], &sr[1..], &sr[0..]];
                        claire_simd::fd8_combine_scale(
                            &mut o[FD8_WIDTH..n3 - FD8_WIDTH],
                            &plus,
                            &minus,
                            &FD8,
                            inv_h,
                            s,
                        );
                    } else {
                        wrap(o, 0..n3);
                    }
                });
            });
        }
    }

    // modeled cost: DRAM-bound, ~2 field sweeps, ~20 flops/point (paper §3.2)
    let words = 2 * layout.local_len();
    comm.advance_kernel(words * std::mem::size_of::<Real>(), 20 * layout.local_len());
}

/// Gradient `∇f` via three 8th-order derivatives. Collective. Wrapper over
/// [`gradient_into`] using the pooled thread-local scratch.
pub fn gradient(f: &ScalarField, comm: &mut Comm) -> VectorField {
    let mut out = VectorField::zeros(*f.layout());
    with_wrapper_scratch(|scratch| gradient_into(f, comm, &mut out, scratch));
    out
}

/// Allocation-free gradient: writes `∇f` into `out`, reusing `scratch`.
/// Collective.
pub fn gradient_into(
    f: &ScalarField,
    comm: &mut Comm,
    out: &mut VectorField,
    scratch: &mut FdScratch,
) {
    for dim in 0..3 {
        deriv_into(f, dim, comm, &mut out.c[dim], scratch);
    }
}

/// Divergence `∇·v` via three 8th-order derivatives. Collective. Wrapper
/// over [`divergence_into`] using the pooled thread-local scratch.
pub fn divergence(v: &VectorField, comm: &mut Comm) -> ScalarField {
    let mut out = ScalarField::zeros(*v.layout());
    with_wrapper_scratch(|scratch| divergence_into(v, comm, &mut out, scratch));
    out
}

/// Allocation-free divergence: writes `∇·v` into `out`, reusing the halo and
/// temporary field in `scratch`. Collective.
pub fn divergence_into(
    v: &VectorField,
    comm: &mut Comm,
    out: &mut ScalarField,
    scratch: &mut FdScratch,
) {
    divergence_scaled_into(v, comm, out, scratch, 1.0 as Real);
}

/// Scaled divergence `s·(∇·v)`, allocation-free: the scale folds into each
/// component's stencil sweep (see [`deriv_scaled_into`]), so a consumer that
/// needs `s·∇·v` pays zero extra memory passes compared to `∇·v`. Collective.
pub fn divergence_scaled_into(
    v: &VectorField,
    comm: &mut Comm,
    out: &mut ScalarField,
    scratch: &mut FdScratch,
    s: Real,
) {
    deriv_scaled_into(&v.c[0], 0, comm, out, scratch, s);
    // one temporary serves both tangential derivatives
    let mut tmp = scratch
        .tmp
        .take()
        .filter(|t| t.layout() == v.layout())
        .unwrap_or_else(|| ScalarField::zeros(*v.layout()));
    for dim in 1..3 {
        deriv_scaled_into(&v.c[dim], dim, comm, &mut tmp, scratch, s);
        out.axpy(1.0, &tmp);
    }
    scratch.tmp = Some(tmp);
}

/// Scaled divergence wrapper over [`divergence_scaled_into`] using the
/// pooled thread-local scratch. Collective.
pub fn divergence_scaled(v: &VectorField, comm: &mut Comm, s: Real) -> ScalarField {
    let mut out = ScalarField::zeros(*v.layout());
    with_wrapper_scratch(|scratch| divergence_scaled_into(v, comm, &mut out, scratch, s));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use claire_grid::{redist, Grid, Layout};
    use claire_mpi::{run_cluster, Topology};

    fn max_err(a: &ScalarField, b: &ScalarField) -> f64 {
        a.data().iter().zip(b.data()).map(|(&x, &y)| (x - y).abs()).fold(0.0, f64::max)
    }

    #[test]
    fn derivative_of_sine_all_dims() {
        let grid = Grid::cube(32);
        let layout = Layout::serial(grid);
        let mut comm = Comm::solo();
        for dim in 0..3 {
            let f = ScalarField::from_fn(layout, |x, y, z| [x, y, z][dim].sin());
            let df = deriv(&f, dim, &mut comm);
            let expect = ScalarField::from_fn(layout, |x, y, z| [x, y, z][dim].cos());
            let e = max_err(&df, &expect);
            assert!(e < 1e-7, "dim {dim}: err {e}");
        }
    }

    #[test]
    fn eighth_order_convergence() {
        // error should drop by ~2^8 when doubling resolution on a mode
        // that is not exactly resolved by the stencil's null space
        let mut comm = Comm::solo();
        let errs: Vec<f64> = [16usize, 32]
            .iter()
            .map(|&n| {
                let layout = Layout::serial(Grid::cube(n));
                let f = ScalarField::from_fn(layout, |x, _, _| (3.0 * x).sin());
                let df = deriv(&f, 0, &mut comm);
                let expect = ScalarField::from_fn(layout, |x, _, _| 3.0 * (3.0 * x).cos());
                max_err(&df, &expect)
            })
            .collect();
        let order = (errs[0] / errs[1]).log2();
        assert!(order > 7.0, "observed order {order} (errors {errs:?})");
    }

    #[test]
    fn deriv_into_matches_deriv_and_reuses_scratch() {
        let layout = Layout::serial(Grid::cube(16));
        let mut comm = Comm::solo();
        let f = ScalarField::from_fn(layout, |x, y, z| x.sin() * y.cos() + z.sin());
        let mut out = ScalarField::zeros(layout);
        let mut scratch = FdScratch::new();
        for dim in 0..3 {
            let expect = deriv(&f, dim, &mut comm);
            // twice through the same scratch: second call must reuse buffers
            deriv_into(&f, dim, &mut comm, &mut out, &mut scratch);
            deriv_into(&f, dim, &mut comm, &mut out, &mut scratch);
            assert_eq!(out.data(), expect.data(), "dim {dim}");
        }
    }

    #[test]
    fn divergence_into_matches_divergence() {
        let layout = Layout::serial(Grid::cube(16));
        let mut comm = Comm::solo();
        let v = VectorField::from_fns(
            layout,
            |x, y, _| (x + y).sin(),
            |_, y, z| (y * 0.5).cos() + z.sin(),
            |x, _, z| (x + z).cos(),
        );
        let expect = divergence(&v, &mut comm);
        let mut out = ScalarField::zeros(layout);
        let mut scratch = FdScratch::new();
        divergence_into(&v, &mut comm, &mut out, &mut scratch);
        assert_eq!(out.data(), expect.data());
    }

    #[test]
    fn scaled_deriv_matches_deriv_then_scale() {
        let layout = Layout::serial(Grid::cube(16));
        let mut comm = Comm::solo();
        let f = ScalarField::from_fn(layout, |x, y, z| (x + 2.0 * y).sin() + (z * 0.5).cos());
        let s = 0.37 as Real;
        let mut scratch = FdScratch::new();
        for dim in 0..3 {
            let mut expect = deriv(&f, dim, &mut comm);
            expect.scale(s);
            let mut out = ScalarField::zeros(layout);
            deriv_scaled_into(&f, dim, &mut comm, &mut out, &mut scratch, s);
            let e = max_err(&out, &expect);
            assert!(e < 1e-11, "dim {dim}: err {e}");
        }
        // s == 1 is bit-identical to the unscaled path
        let unscaled = deriv(&f, 0, &mut comm);
        let mut out = ScalarField::zeros(layout);
        deriv_scaled_into(&f, 0, &mut comm, &mut out, &mut scratch, 1.0);
        assert_eq!(out.data(), unscaled.data());
    }

    #[test]
    fn scaled_divergence_matches_divergence_then_scale() {
        let layout = Layout::serial(Grid::cube(16));
        let mut comm = Comm::solo();
        let v = VectorField::from_fns(
            layout,
            |x, y, _| (x + y).sin(),
            |_, y, z| (y * 0.5).cos() + z.sin(),
            |x, _, z| (x + z).cos(),
        );
        let s = -1.75 as Real;
        let mut expect = divergence(&v, &mut comm);
        expect.scale(s);
        let got = divergence_scaled(&v, &mut comm, s);
        let e = max_err(&got, &expect);
        assert!(e < 1e-11, "err {e}");
    }

    #[test]
    fn distributed_matches_serial() {
        let grid = Grid::new([16, 8, 8]);
        let mut comm = Comm::solo();
        let sf = ScalarField::from_fn(Layout::serial(grid), |x, y, z| {
            (x).sin() * (2.0 * y).cos() + (x + z).sin()
        });
        let serial_grad = gradient(&sf, &mut comm);

        for p in [2usize, 3, 4, 5] {
            let expect: Vec<Vec<Real>> = serial_grad.c.iter().map(|c| c.data().to_vec()).collect();
            let res = run_cluster(Topology::new(p, 4), move |comm| {
                let layout = Layout::distributed(grid, comm);
                let f = ScalarField::from_fn(layout, |x, y, z| {
                    (x).sin() * (2.0 * y).cos() + (x + z).sin()
                });
                let grad = gradient(&f, comm);
                let mut errs = Vec::new();
                for (comp, exp) in grad.c.iter().zip(&expect) {
                    if let Some(full) = redist::gather(comp, comm) {
                        let e = full
                            .data()
                            .iter()
                            .zip(exp)
                            .map(|(&a, &b)| (a - b).abs())
                            .fold(0.0, f64::max);
                        errs.push(e);
                    }
                }
                errs
            });
            for e in &res.outputs[0] {
                assert!(*e < 1e-12, "p={p}: dist/serial mismatch {e}");
            }
        }
    }

    #[test]
    fn divergence_of_curl_like_field_vanishes() {
        // v = (sin(x2), sin(x3), sin(x1)) is divergence free
        let layout = Layout::serial(Grid::cube(16));
        let mut comm = Comm::solo();
        let v =
            VectorField::from_fns(layout, |_, y, _| y.sin(), |_, _, z| z.sin(), |x, _, _| x.sin());
        let div = divergence(&v, &mut comm);
        let m = div.max_abs(&mut comm);
        assert!(m < 1e-10, "divergence should vanish: {m}");
    }

    #[test]
    fn wrapper_reuses_pooled_scratch() {
        let layout = Layout::serial(Grid::cube(16));
        let mut comm = Comm::solo();
        let f = ScalarField::from_fn(layout, |x, y, _| x.sin() + y.cos());
        let halo_ptr = || {
            WRAPPER_SCRATCH.with(|s| s.borrow().ghost.as_ref().map(|g| g.data().as_ptr() as usize))
        };
        // warm up this thread's wrapper scratch, then check the halo buffer
        // is held (not re-allocated) across subsequent wrapper calls
        let _ = deriv(&f, 0, &mut comm);
        let p1 = halo_ptr().expect("wrapper scratch should hold a halo after deriv");
        let _ = gradient(&f, &mut comm);
        let p2 = halo_ptr().expect("wrapper scratch should hold a halo after gradient");
        assert_eq!(p1, p2, "wrappers must reuse the thread-local halo buffer");
    }

    #[test]
    fn modeled_kernel_time_advances() {
        let layout = Layout::serial(Grid::cube(8));
        let mut comm = Comm::solo();
        let f = ScalarField::from_fn(layout, |x, _, _| x.sin());
        let t0 = comm.clock().compute_secs();
        let _ = gradient(&f, &mut comm);
        assert!(comm.clock().compute_secs() > t0);
    }
}
