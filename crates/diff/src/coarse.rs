//! Spectral restriction / prolongation / high-pass between a fine grid and
//! its half-resolution coarse grid — the grid-transfer machinery of the
//! two-level preconditioner `2LInvH0` (paper Algorithm 1):
//!
//! ```text
//! sf ← (βA)⁻¹ r
//! sc ← RESTRICT(sf)
//! sc ← run CG(H0c, sc, (βA)⁻¹, tol)      (on the coarse grid)
//! sf ← PROLONG(sc) + HIGHPASS(sf)
//! ```
//!
//! "The restriction and prolongation operators are implemented in the
//! spectral domain" (§2): restriction truncates to the modes representable
//! on the coarse grid, prolongation zero-pads, high-pass keeps the
//! complement. Coefficients move between the fine and coarse x2-slab
//! decompositions through an all-to-all exchange of `(index, value)` pairs.

use claire_fft::{CpxT, DistFftT, DistSpectralT, FftElem};
use claire_grid::{Grid, Real, ScalarFieldT, Slab, VectorFieldT};
use claire_mpi::{AlltoallMethod, Comm, CommCat, Pod};

/// One spectral coefficient in flight between decompositions. At f32 the
/// payload shrinks from 24 to 16 bytes per coefficient, cutting the
/// two-level transfer's wire traffic in the mixed-precision inner solve.
#[derive(Clone, Copy, Debug)]
#[repr(C)]
struct PackedCoefT<T> {
    /// Linear index in the *destination* grid's global spectral array.
    idx: u64,
    re: T,
    im: T,
}

// SAFETY: repr(C); u64 + 2×T has no padding for T ∈ {f32, f64}.
unsafe impl<T: Pod> Pod for PackedCoefT<T> {}

/// Grid-transfer operators between a fine grid and `fine.coarsen()`,
/// generic over the element width.
pub struct TwoLevelT<T: FftElem> {
    fine: Grid,
    coarse: Grid,
    fft_f: DistFftT<T>,
    fft_c: DistFftT<T>,
    nranks: usize,
    rank: usize,
}

/// Field-precision ([`Real`]) grid-transfer operators.
pub type TwoLevel = TwoLevelT<Real>;

/// Whether integer wavenumber `k` survives on a grid with `m` points in that
/// dimension (strictly below the coarse Nyquist band, so ±k pairs survive
/// together and real fields stay real).
fn survives(k: isize, m: usize) -> bool {
    k.unsigned_abs() < m / 2
}

impl<T: FftElem> TwoLevelT<T> {
    /// Build transfer operators for `fine` (must have even dims ≥ 4) on the
    /// calling rank of `comm`.
    pub fn new(fine: Grid, comm: &Comm) -> TwoLevelT<T> {
        let coarse = fine.coarsen();
        TwoLevelT {
            fine,
            coarse,
            fft_f: DistFftT::new(fine, comm),
            fft_c: DistFftT::new(coarse, comm),
            nranks: comm.size(),
            rank: comm.rank(),
        }
    }

    /// The fine grid.
    pub fn fine_grid(&self) -> Grid {
        self.fine
    }

    /// The coarse (half-resolution) grid.
    pub fn coarse_grid(&self) -> Grid {
        self.coarse
    }

    /// Restrict a fine field to the coarse grid (spectral truncation).
    pub fn restrict(&self, f: &ScalarFieldT<T>, comm: &mut Comm) -> ScalarFieldT<T> {
        let spec_f = self.fft_f.forward(f, comm);
        let [m1, m2, m3] = self.coarse.n;
        let n3c_c = m3 / 2 + 1;
        let scale = T::from_f64(self.coarse.len() as f64 / self.fine.len() as f64);

        let p = self.nranks;
        let mut bufs: Vec<Vec<PackedCoefT<T>>> = (0..p).map(|_| Vec::new()).collect();
        let n3c_f = spec_f.n3c();
        let nj = spec_f.x2_slab.ni;
        for i in 0..self.fine.n[0] {
            let k1 = self.fine.wavenumber(0, i);
            if !survives(k1, m1) {
                continue;
            }
            let ic = if k1 >= 0 { k1 as usize } else { (m1 as isize + k1) as usize };
            for jl in 0..nj {
                let k2 = self.fine.wavenumber(1, spec_f.j_global(jl));
                if !survives(k2, m2) {
                    continue;
                }
                let jc = if k2 >= 0 { k2 as usize } else { (m2 as isize + k2) as usize };
                let dst = Slab::owner_of(m2, p, jc);
                let base = (i * nj + jl) * n3c_f;
                for k in 0..m3 / 2 {
                    let v = spec_f.data[base + k].scale(scale);
                    let idx = ((ic * m2 + jc) * n3c_c + k) as u64;
                    bufs[dst].push(PackedCoefT { idx, re: v.re, im: v.im });
                }
            }
        }
        let parts = comm.alltoallv(&bufs, CommCat::FftTranspose, AlltoallMethod::Auto);

        let my_slab = Slab::of_rank(m2, p, self.rank);
        let mut spec_c = DistSpectralT::zeros(self.coarse, my_slab);
        place_coefs(&mut spec_c, &parts, m2, n3c_c);
        self.fft_c.inverse(spec_c, comm)
    }

    /// Prolong a coarse field to the fine grid (spectral zero-padding).
    ///
    /// Coarse Nyquist modes (not representable symmetrically on the fine
    /// grid without aliasing partners) are dropped, the standard choice for
    /// spectral prolongation.
    pub fn prolong(&self, fc: &ScalarFieldT<T>, comm: &mut Comm) -> ScalarFieldT<T> {
        assert_eq!(fc.layout().grid, self.coarse, "prolong expects a coarse field");
        let spec_c = self.fft_c.forward(fc, comm);
        let [n1, n2, n3] = self.fine.n;
        let [m1, m2, m3] = self.coarse.n;
        let n3c_f = n3 / 2 + 1;
        let scale = T::from_f64(self.fine.len() as f64 / self.coarse.len() as f64);

        let p = self.nranks;
        let mut bufs: Vec<Vec<PackedCoefT<T>>> = (0..p).map(|_| Vec::new()).collect();
        let n3c_c = spec_c.n3c();
        let nj = spec_c.x2_slab.ni;
        for ic in 0..m1 {
            let k1 = self.coarse.wavenumber(0, ic);
            if !survives(k1, m1) {
                continue; // drop coarse Nyquist
            }
            let i = if k1 >= 0 { k1 as usize } else { (n1 as isize + k1) as usize };
            for jl in 0..nj {
                let k2 = self.coarse.wavenumber(1, spec_c.j_global(jl));
                if !survives(k2, m2) {
                    continue;
                }
                let j = if k2 >= 0 { k2 as usize } else { (n2 as isize + k2) as usize };
                let dst = Slab::owner_of(n2, p, j);
                let base = (ic * nj + jl) * n3c_c;
                for k in 0..m3 / 2 {
                    let v = spec_c.data[base + k].scale(scale);
                    let idx = ((i * n2 + j) * n3c_f + k) as u64;
                    bufs[dst].push(PackedCoefT { idx, re: v.re, im: v.im });
                }
            }
        }
        let parts = comm.alltoallv(&bufs, CommCat::FftTranspose, AlltoallMethod::Auto);

        let my_slab = Slab::of_rank(n2, p, self.rank);
        let mut spec_f = DistSpectralT::zeros(self.fine, my_slab);
        place_coefs(&mut spec_f, &parts, n2, n3c_f);
        self.fft_f.inverse(spec_f, comm)
    }

    /// High-pass filter: zero every mode representable on the coarse grid,
    /// keep the rest. Satisfies `PROLONG(RESTRICT(s)) + HIGHPASS(s) = s`.
    pub fn highpass(&self, f: &ScalarFieldT<T>, comm: &mut Comm) -> ScalarFieldT<T> {
        let mut spec = self.fft_f.forward(f, comm);
        let [m1, m2, m3] = self.coarse.n;
        let n3c = spec.n3c();
        let nj = spec.x2_slab.ni;
        for i in 0..self.fine.n[0] {
            let k1 = self.fine.wavenumber(0, i);
            let low1 = survives(k1, m1);
            for jl in 0..nj {
                let k2 = self.fine.wavenumber(1, spec.j_global(jl));
                let low2 = survives(k2, m2);
                if !(low1 && low2) {
                    continue;
                }
                let base = (i * nj + jl) * n3c;
                for z in spec.data[base..base + m3 / 2].iter_mut() {
                    *z = CpxT::ZERO;
                }
            }
        }
        self.fft_f.inverse(spec, comm)
    }

    /// Restrict every component of a vector field.
    pub fn restrict_vector(&self, v: &VectorFieldT<T>, comm: &mut Comm) -> VectorFieldT<T> {
        VectorFieldT { c: std::array::from_fn(|d| self.restrict(&v.c[d], comm)) }
    }

    /// Prolong every component of a vector field.
    pub fn prolong_vector(&self, v: &VectorFieldT<T>, comm: &mut Comm) -> VectorFieldT<T> {
        VectorFieldT { c: std::array::from_fn(|d| self.prolong(&v.c[d], comm)) }
    }

    /// High-pass every component of a vector field.
    pub fn highpass_vector(&self, v: &VectorFieldT<T>, comm: &mut Comm) -> VectorFieldT<T> {
        VectorFieldT { c: std::array::from_fn(|d| self.highpass(&v.c[d], comm)) }
    }
}

/// Scatter received `(idx, value)` pairs into a spectral slab.
fn place_coefs<T: FftElem>(
    spec: &mut DistSpectralT<T>,
    parts: &[Vec<PackedCoefT<T>>],
    n2: usize,
    n3c: usize,
) {
    let slab = spec.x2_slab;
    let nj = slab.ni;
    for part in parts {
        for pc in part {
            let idx = pc.idx as usize;
            let k = idx % n3c;
            let j = (idx / n3c) % n2;
            let i = idx / (n3c * n2);
            debug_assert!(slab.owns(j), "coefficient routed to wrong rank");
            let jl = j - slab.i0;
            spec.data[(i * nj + jl) * n3c + k] = CpxT::new(pc.re, pc.im);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use claire_grid::{Layout, ScalarField};
    use claire_mpi::{run_cluster, Topology};

    fn low_mode(x: Real, y: Real, z: Real) -> Real {
        x.sin() * y.cos() + (z + x).cos()
    }

    #[test]
    fn restrict_reproduces_low_modes() {
        let fine = Grid::cube(16);
        let mut comm = Comm::solo();
        let tl = TwoLevel::new(fine, &comm);
        let f = ScalarField::from_fn(Layout::serial(fine), low_mode);
        let fc = tl.restrict(&f, &mut comm);
        let expect = ScalarField::from_fn(Layout::serial(tl.coarse_grid()), low_mode);
        let err =
            fc.data().iter().zip(expect.data()).map(|(&a, &b)| (a - b).abs()).fold(0.0, f64::max);
        assert!(err < 1e-8, "restriction should be exact on low modes: {err}");
    }

    #[test]
    fn prolong_restrict_identity_on_low_modes() {
        let fine = Grid::cube(16);
        let mut comm = Comm::solo();
        let tl = TwoLevel::new(fine, &comm);
        let fc = ScalarField::from_fn(Layout::serial(tl.coarse_grid()), low_mode);
        let ff = tl.prolong(&fc, &mut comm);
        let back = tl.restrict(&ff, &mut comm);
        let err =
            back.data().iter().zip(fc.data()).map(|(&a, &b)| (a - b).abs()).fold(0.0, f64::max);
        assert!(err < 1e-8, "restrict∘prolong should be identity: {err}");
    }

    #[test]
    fn two_level_decomposition_identity() {
        // PROLONG(RESTRICT(s)) + HIGHPASS(s) == s — the exact splitting
        // Algorithm 1 relies on.
        let fine = Grid::cube(8);
        let mut comm = Comm::solo();
        let tl = TwoLevel::new(fine, &comm);
        let s = ScalarField::from_fn(Layout::serial(fine), |x, y, z| {
            (3.0 * x).sin() + (x * 0.5).cos() * (2.0 * y).sin() + (3.0 * z).cos() + 0.3
        });
        let low = tl.prolong(&tl.restrict(&s, &mut comm), &mut comm);
        let high = tl.highpass(&s, &mut comm);
        let mut sum = low.clone();
        sum.axpy(1.0, &high);
        let err = sum.data().iter().zip(s.data()).map(|(&a, &b)| (a - b).abs()).fold(0.0, f64::max);
        assert!(err < 1e-8, "low + high should reconstruct s: {err}");
    }

    #[test]
    fn distributed_matches_serial() {
        let fine = Grid::cube(16);
        let mut comm = Comm::solo();
        let tl = TwoLevel::new(fine, &comm);
        let f = ScalarField::from_fn(Layout::serial(fine), |x, y, z| {
            (2.0 * x).sin() * (y).cos() + (5.0 * z).sin()
        });
        let expect_r = tl.restrict(&f, &mut comm).into_data();
        let expect_h = tl.highpass(&f, &mut comm).into_data();

        let res = run_cluster(Topology::new(4, 4), move |comm| {
            let layout = Layout::distributed(fine, comm);
            let f = ScalarField::from_fn(layout, |x, y, z| {
                (2.0 * x).sin() * (y).cos() + (5.0 * z).sin()
            });
            let tl = TwoLevel::new(fine, comm);
            let r = tl.restrict(&f, comm);
            let h = tl.highpass(&f, comm);
            (
                claire_grid::redist::gather(&r, comm).map(|g| g.into_data()),
                claire_grid::redist::gather(&h, comm).map(|g| g.into_data()),
            )
        });
        let (got_r, got_h) = &res.outputs[0];
        for (a, b) in got_r.as_ref().unwrap().iter().zip(&expect_r) {
            assert!((a - b).abs() < 1e-9, "restrict mismatch");
        }
        for (a, b) in got_h.as_ref().unwrap().iter().zip(&expect_h) {
            assert!((a - b).abs() < 1e-9, "highpass mismatch");
        }
    }
}
