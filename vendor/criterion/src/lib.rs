//! Offline stand-in for the `criterion` crate.
//!
//! A minimal wall-clock micro-benchmark harness exposing the API subset the
//! workspace's benches use: `Criterion::{benchmark_group, bench_function,
//! sample_size}`, `BenchmarkGroup::{bench_function, bench_with_input,
//! finish}`, `Bencher::iter`, `BenchmarkId::from_parameter`, and the
//! `criterion_group!`/`criterion_main!` macros. Each benchmark reports
//! median / mean / min over `sample_size` timed samples.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness state.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\n## {name}");
        BenchmarkGroup { criterion: self, group: name.to_string() }
    }

    /// Run a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_bench(name, self.sample_size, &mut f);
        self
    }
}

/// A named collection of benchmarks sharing the harness config.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    group: String,
}

impl BenchmarkGroup<'_> {
    /// Benchmark with a display name.
    pub fn bench_function<N: Display, F: FnMut(&mut Bencher)>(&mut self, id: N, mut f: F) {
        let name = format!("{}/{}", self.group, id);
        run_bench(&name, self.criterion.sample_size, &mut f);
    }

    /// Benchmark parameterized by an input value.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        let name = format!("{}/{}", self.group, id.0);
        run_bench(&name, self.criterion.sample_size, &mut |b| f(b, input));
    }

    /// End the group (printing is incremental; nothing to flush).
    pub fn finish(self) {}
}

/// Identifier for a parameterized benchmark.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Id rendered from the parameter value alone.
    pub fn from_parameter<P: Display>(p: P) -> BenchmarkId {
        BenchmarkId(p.to_string())
    }

    /// Id from a function name and a parameter.
    pub fn new<N: Display, P: Display>(name: N, p: P) -> BenchmarkId {
        BenchmarkId(format!("{name}/{p}"))
    }
}

/// Passed to the closure under test; [`Bencher::iter`] runs and times it.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Time `f`, collecting one sample per call after warmup.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..2 {
            black_box(f());
        }
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(f());
            self.samples.push(t0.elapsed());
        }
    }
}

fn run_bench(name: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher { samples: Vec::new(), sample_size };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{name:48} (no samples)");
        return;
    }
    b.samples.sort_unstable();
    let median = b.samples[b.samples.len() / 2];
    let mean = b.samples.iter().sum::<Duration>() / b.samples.len() as u32;
    let min = b.samples[0];
    println!(
        "{name:48} median {}  mean {}  min {}  (n={})",
        fmt_duration(median),
        fmt_duration(mean),
        fmt_duration(min),
        b.samples.len()
    );
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Define a benchmark entry function from a config and target list.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = <$crate::Criterion as ::core::default::Default>::default();
            targets = $($target),+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default().sample_size(3);
        let mut count = 0u32;
        c.bench_function("counter", |b| b.iter(|| count += 1));
        assert!(count >= 3, "closure should run warmup + samples: {count}");
    }

    #[test]
    fn group_api() {
        let mut c = Criterion::default().sample_size(2);
        let mut group = c.benchmark_group("g");
        group.bench_function("f", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::from_parameter("8"), &8usize, |b, &n| b.iter(|| n * 2));
        group.finish();
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(500)), "500 ns");
        assert_eq!(fmt_duration(Duration::from_micros(1500)), "1.50 ms");
    }
}
