//! Offline stand-in for the `crossbeam` crate.
//!
//! Only `crossbeam::channel::{unbounded, Sender, Receiver}` is used by the
//! workspace (the virtual-cluster message substrate). This implementation is
//! a straightforward MPMC unbounded queue over `Mutex<VecDeque>` +
//! `Condvar`: senders never block, receivers block until a message or until
//! every sender is dropped.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    ///
    /// (This shim never reports disconnection on send — the queue is kept
    /// alive by the sender itself — matching how the workspace uses the
    /// channel: sends are fire-and-forget.)
    #[derive(Debug)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived before the deadline; the channel may still
        /// produce messages later.
        Timeout,
        /// The channel is empty and every sender is gone.
        Disconnected,
    }

    impl std::fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                RecvTimeoutError::Timeout => write!(f, "timed out waiting on channel"),
                RecvTimeoutError::Disconnected => {
                    write!(f, "receiving on an empty and disconnected channel")
                }
            }
        }
    }

    impl std::error::Error for RecvTimeoutError {}

    /// The sending half of an unbounded channel. Cloneable.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of an unbounded channel. Cloneable (MPMC).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::SeqCst);
            Sender { shared: self.shared.clone() }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                // last sender gone: wake blocked receivers so they can error
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver { shared: self.shared.clone() }
        }
    }

    impl<T> Sender<T> {
        /// Enqueue a message; never blocks.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut q = self.shared.queue.lock().unwrap();
            q.push_back(value);
            drop(q);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives or every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.shared.queue.lock().unwrap();
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.shared.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvError);
                }
                q = self.shared.ready.wait(q).unwrap();
            }
        }

        /// Block until a message arrives, every sender is dropped, or
        /// `timeout` elapses — whichever comes first.
        ///
        /// Needed by abort-aware receivers (a rank blocked in `recv` must
        /// periodically re-check an out-of-band abort flag so one dead peer
        /// cannot strand the whole cluster).
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            let deadline = std::time::Instant::now() + timeout;
            let mut q = self.shared.queue.lock().unwrap();
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.shared.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = std::time::Instant::now();
                let Some(left) = deadline.checked_duration_since(now).filter(|d| !d.is_zero())
                else {
                    return Err(RecvTimeoutError::Timeout);
                };
                let (guard, _res) = self.shared.ready.wait_timeout(q, left).unwrap();
                q = guard;
            }
        }

        /// Non-blocking receive: `None` when the queue is currently empty.
        pub fn try_recv(&self) -> Option<T> {
            self.shared.queue.lock().unwrap().pop_front()
        }
    }

    /// Create an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
        });
        (Sender { shared: shared.clone() }, Receiver { shared })
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_order() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv().unwrap(), 1);
            assert_eq!(rx.recv().unwrap(), 2);
        }

        #[test]
        fn cross_thread() {
            let (tx, rx) = unbounded();
            let h = std::thread::spawn(move || {
                for i in 0..100 {
                    tx.send(i).unwrap();
                }
            });
            let mut got = Vec::new();
            for _ in 0..100 {
                got.push(rx.recv().unwrap());
            }
            h.join().unwrap();
            assert_eq!(got, (0..100).collect::<Vec<_>>());
        }

        #[test]
        fn disconnect_errors() {
            let (tx, rx) = unbounded::<u32>();
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn recv_timeout_times_out_then_delivers() {
            let (tx, rx) = unbounded::<u32>();
            let d = std::time::Duration::from_millis(5);
            assert_eq!(rx.recv_timeout(d), Err(RecvTimeoutError::Timeout));
            tx.send(7).unwrap();
            assert_eq!(rx.recv_timeout(d), Ok(7));
            drop(tx);
            assert_eq!(rx.recv_timeout(d), Err(RecvTimeoutError::Disconnected));
        }
    }
}
