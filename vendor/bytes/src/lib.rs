//! Offline stand-in for the `bytes` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the tiny API subset it actually uses: an immutable, cheaply
//! cloneable byte buffer. `Bytes` here is an `Arc<[u8]>` — clones are
//! reference-count bumps, exactly the property claire-mpi relies on when a
//! message payload is buffered and later re-matched.

use std::ops::Deref;
use std::sync::Arc;

/// An immutable, cheaply cloneable byte buffer.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes { data: Arc::from(&[][..]) }
    }

    /// Copy a byte slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes { data: Arc::from(data) }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True iff the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes { data: Arc::from(v.into_boxed_slice()) }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        Bytes::copy_from_slice(v)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.data[..] == other.data[..]
    }
}

impl Eq for Bytes {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_shares_storage() {
        let a = Bytes::copy_from_slice(&[1, 2, 3]);
        let b = a.clone();
        assert_eq!(&a[..], &b[..]);
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn empty() {
        assert!(Bytes::new().is_empty());
        assert_eq!(Bytes::default().len(), 0);
    }
}
