//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` for the two shapes the workspace uses:
//!
//! * structs with named fields — serialized as a JSON object in declaration
//!   order; fields annotated `#[serde(skip_serializing)]` are omitted;
//! * enums whose variants are all unit variants — serialized as the variant
//!   name string (serde's "externally tagged" form for unit variants).
//!
//! The input item is parsed directly from the `proc_macro::TokenStream`
//! (the environment has no `syn`/`quote`), which is sufficient because the
//! derive targets are plain non-generic items.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive `serde::Serialize` (the vendored trait) for a struct or enum.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // skip outer attributes (`#[...]`, doc comments) and visibility
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                // `pub(crate)` etc.
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => break,
        }
    }

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("derive(Serialize): expected `struct` or `enum`, got {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("derive(Serialize): expected item name, got {other:?}"),
    };
    i += 1;

    let body = loop {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g.stream(),
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                panic!("derive(Serialize): generic items are not supported by the vendored shim")
            }
            Some(_) => i += 1,
            None => panic!("derive(Serialize): missing item body"),
        }
    };

    let impl_body = match kind.as_str() {
        "struct" => struct_impl(&body),
        "enum" => enum_impl(&name, &body),
        other => panic!("derive(Serialize): unsupported item kind `{other}`"),
    };

    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n{impl_body}\n}}\n\
         }}"
    )
    .parse()
    .expect("derive(Serialize): generated impl failed to parse")
}

/// Collect named fields (name, skipped?) from a struct body stream.
fn struct_impl(body: &TokenStream) -> String {
    let tokens: Vec<TokenTree> = body.clone().into_iter().collect();
    let mut fields: Vec<String> = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // field attributes
        let mut skip = false;
        loop {
            match tokens.get(i) {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                        if attr_is_skip(&g.stream()) {
                            skip = true;
                        }
                    }
                    i += 2;
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    i += 1;
                    if let Some(TokenTree::Group(g)) = tokens.get(i) {
                        if g.delimiter() == Delimiter::Parenthesis {
                            i += 1;
                        }
                    }
                }
                _ => break,
            }
        }
        let Some(TokenTree::Ident(field)) = tokens.get(i) else {
            break; // trailing comma / end of fields
        };
        let field = field.to_string();
        i += 1;
        // expect `:`, then skip the type until a top-level `,`
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("derive(Serialize): expected `:` after field `{field}`, got {other:?}"),
        }
        let mut depth = 0i32; // `<` nesting in the type
        while let Some(t) = tokens.get(i) {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        if !skip {
            fields.push(field);
        }
    }

    let mut out = String::from("let mut fields: Vec<(String, ::serde::Value)> = Vec::new();\n");
    for f in &fields {
        out.push_str(&format!(
            "fields.push((\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f})));\n"
        ));
    }
    out.push_str("::serde::Value::Object(fields)");
    out
}

/// Unit-variant enum: serialize as the variant name string.
fn enum_impl(name: &str, body: &TokenStream) -> String {
    let tokens: Vec<TokenTree> = body.clone().into_iter().collect();
    let mut variants: Vec<String> = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2,
            TokenTree::Ident(id) => {
                variants.push(id.to_string());
                i += 1;
                // unit variants only: next must be `,` or end
                match tokens.get(i) {
                    None => {}
                    Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
                    Some(other) => panic!(
                        "derive(Serialize): enum `{name}` has a non-unit variant near {other:?}; \
                         the vendored shim only supports unit variants"
                    ),
                }
            }
            other => panic!("derive(Serialize): unexpected token in enum `{name}`: {other:?}"),
        }
    }
    let arms: Vec<String> = variants
        .iter()
        .map(|v| format!("{name}::{v} => ::serde::Value::Str(\"{v}\".to_string()),"))
        .collect();
    format!("match self {{\n{}\n}}", arms.join("\n"))
}

/// True iff an attribute group body is `serde(...skip_serializing...)`.
fn attr_is_skip(stream: &TokenStream) -> bool {
    let tokens: Vec<TokenTree> = stream.clone().into_iter().collect();
    match (tokens.first(), tokens.get(1)) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(args))) if id.to_string() == "serde" => {
            args.stream()
                .into_iter()
                .any(|t| matches!(&t, TokenTree::Ident(a) if a.to_string() == "skip_serializing"))
        }
        _ => false,
    }
}
