//! Offline stand-in for `serde_json`.
//!
//! Renders the vendored [`serde::Value`] tree to JSON text. Numbers follow
//! serde_json's conventions closely enough for the workspace's result
//! records: integers print without a decimal point, floats via Rust's
//! shortest-roundtrip `{}` formatting, and non-finite floats as `null`.

pub use serde::Value;

/// Serialization error. The vendored tree rendering is total, so this is
/// never actually produced; it exists so call sites can keep serde_json's
/// `Result` signatures.
#[derive(Debug)]
pub struct Error(());

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON serialization error")
    }
}

impl std::error::Error for Error {}

/// Serialize to a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), None, 0, &mut out);
    Ok(out)
}

/// Serialize to a pretty-printed JSON string (two-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), Some(2), 0, &mut out);
    Ok(out)
}

fn render(v: &Value, indent: Option<usize>, level: usize, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::Num(x) => {
            if x.is_finite() {
                // integral floats still get a `.0` so the value reads as a float
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    out.push_str(&format!("{x:.1}"));
                } else {
                    out.push_str(&format!("{x}"));
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => render_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, level + 1, out);
                render(item, indent, level + 1, out);
            }
            newline_indent(indent, level, out);
            out.push(']');
        }
        Value::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, level + 1, out);
                render_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                render(val, indent, level + 1, out);
            }
            newline_indent(indent, level, out);
            out.push('}');
        }
    }
}

fn newline_indent(indent: Option<usize>, level: usize, out: &mut String) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_object() {
        let v = Value::Object(vec![
            ("a".into(), Value::UInt(1)),
            ("b".into(), Value::Array(vec![Value::Num(0.5), Value::Null])),
            ("s".into(), Value::Str("x\"y".into())),
        ]);
        assert_eq!(to_string(&v).unwrap(), r#"{"a":1,"b":[0.5,null],"s":"x\"y"}"#);
    }

    #[test]
    fn pretty_has_indentation() {
        let v = Value::Object(vec![("k".into(), Value::Bool(true))]);
        assert_eq!(to_string_pretty(&v).unwrap(), "{\n  \"k\": true\n}");
    }

    #[test]
    fn float_formatting() {
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&0.125f64).unwrap(), "0.125");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
    }
}
