//! Offline stand-in for `serde_json`.
//!
//! Renders the vendored [`serde::Value`] tree to JSON text and parses JSON
//! text back into a [`Value`] tree ([`from_str`]). Numbers follow
//! serde_json's conventions closely enough for the workspace's result
//! records: integers print without a decimal point, floats via Rust's
//! shortest-roundtrip `{}` formatting, and non-finite floats as `null`.

pub use serde::Value;

/// Serialization/parse error carrying a short message.
#[derive(Debug)]
pub struct Error(String);

impl Error {
    fn msg(m: impl Into<String>) -> Self {
        Error(m.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serialize to a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), None, 0, &mut out);
    Ok(out)
}

/// Serialize to a pretty-printed JSON string (two-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), Some(2), 0, &mut out);
    Ok(out)
}

fn render(v: &Value, indent: Option<usize>, level: usize, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::Num(x) => {
            if x.is_finite() {
                // integral floats still get a `.0` so the value reads as a float
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    out.push_str(&format!("{x:.1}"));
                } else {
                    out.push_str(&format!("{x}"));
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => render_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, level + 1, out);
                render(item, indent, level + 1, out);
            }
            newline_indent(indent, level, out);
            out.push(']');
        }
        Value::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, level + 1, out);
                render_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                render(val, indent, level + 1, out);
            }
            newline_indent(indent, level, out);
            out.push('}');
        }
    }
}

fn newline_indent(indent: Option<usize>, level: usize, out: &mut String) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse a JSON document into a [`Value`] tree.
///
/// Integer literals without sign parse as [`Value::UInt`], negative integers
/// as [`Value::Int`], and anything with a fraction or exponent as
/// [`Value::Num`] — mirroring how [`to_string`] renders each variant, so a
/// render → parse → render cycle is textually stable.
pub fn from_str(s: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!("expected `{}` at byte {}", b as char, self.pos)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error::msg(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(Error::msg(format!("unexpected `{}` at byte {}", c as char, self.pos))),
            None => Err(Error::msg("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::msg(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(Error::msg(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::msg("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::msg("non-ascii \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::msg("invalid \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::msg("invalid \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error::msg(format!("bad escape at byte {}", self.pos))),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // consume one full UTF-8 scalar
                    let start = self.pos;
                    let mut end = start + 1;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| Error::msg("invalid UTF-8 in string"))?;
                    out.push_str(chunk);
                    self.pos = end;
                }
                None => return Err(Error::msg("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("invalid number"))?;
        if is_float {
            text.parse::<f64>().map(Value::Num).map_err(|_| Error::msg("invalid float"))
        } else if text.starts_with('-') {
            text.parse::<i64>().map(Value::Int).map_err(|_| Error::msg("invalid integer"))
        } else {
            text.parse::<u64>().map(Value::UInt).map_err(|_| Error::msg("invalid integer"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_object() {
        let v = Value::Object(vec![
            ("a".into(), Value::UInt(1)),
            ("b".into(), Value::Array(vec![Value::Num(0.5), Value::Null])),
            ("s".into(), Value::Str("x\"y".into())),
        ]);
        assert_eq!(to_string(&v).unwrap(), r#"{"a":1,"b":[0.5,null],"s":"x\"y"}"#);
    }

    #[test]
    fn pretty_has_indentation() {
        let v = Value::Object(vec![("k".into(), Value::Bool(true))]);
        assert_eq!(to_string_pretty(&v).unwrap(), "{\n  \"k\": true\n}");
    }

    #[test]
    fn float_formatting() {
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&0.125f64).unwrap(), "0.125");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
    }

    #[test]
    fn parse_round_trip() {
        let v = Value::Object(vec![
            ("a".into(), Value::UInt(1)),
            ("b".into(), Value::Array(vec![Value::Num(0.5), Value::Null, Value::Int(-3)])),
            ("s".into(), Value::Str("x\"y\nz".into())),
            ("t".into(), Value::Bool(true)),
        ]);
        let text = to_string(&v).unwrap();
        assert_eq!(from_str(&text).unwrap(), v);
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(from_str(&pretty).unwrap(), v);
    }

    #[test]
    fn parse_escapes_and_exponents() {
        assert_eq!(from_str(r#""A\t""#).unwrap(), Value::Str("A\t".into()));
        assert_eq!(from_str("1.5e3").unwrap(), Value::Num(1500.0));
        assert_eq!(from_str("-7").unwrap(), Value::Int(-7));
        assert!(from_str("{\"k\":1,}").is_err());
        assert!(from_str("[1 2]").is_err());
        assert!(from_str("42 junk").is_err());
    }
}
