//! Offline stand-in for the `rand` crate.
//!
//! Provides the subset the workspace uses: a deterministic, seedable
//! [`rngs::StdRng`] (xoshiro256++ seeded via SplitMix64) and
//! [`RngExt::random_range`] uniform sampling over integer and float ranges.
//! Determinism per seed is the property the synthetic datasets rely on;
//! statistical quality well beyond "looks random" is not required there.

use std::ops::{Range, RangeInclusive};

/// Core RNG interface: a source of uniform `u64`s.
pub trait RngCore {
    /// Next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Construct from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Extension methods on any [`RngCore`] (the rand 0.9+ `Rng` surface the
/// workspace uses).
pub trait RngExt: RngCore {
    /// Uniform sample from `range`.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Ranges that can produce a uniform sample.
pub trait SampleRange<T> {
    /// Draw one uniform sample from `self`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        // 53 uniform mantissa bits in [0, 1)
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        let r = (self.start as f64)..(self.end as f64);
        r.sample_from(rng) as f32
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Named RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256++ with SplitMix64 seeding.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 expansion of the seed into the full state
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.random_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&x));
            let n: i32 = rng.random_range(1..=4);
            assert!((1..=4).contains(&n));
            let u: usize = rng.random_range(0..10);
            assert!(u < 10);
        }
    }

    #[test]
    fn float_range_covers_span() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..1000 {
            let x: f64 = rng.random_range(0.0..1.0);
            lo_seen |= x < 0.1;
            hi_seen |= x > 0.9;
        }
        assert!(lo_seen && hi_seen, "uniform sampling should cover the range");
    }
}
