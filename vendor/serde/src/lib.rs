//! Offline stand-in for `serde`.
//!
//! The build environment has no crates.io access, so this crate provides
//! the minimal surface the workspace uses: a [`Serialize`] trait that lowers
//! a value to a JSON [`Value`] tree, a `#[derive(Serialize)]` proc-macro
//! (from the sibling `serde_derive` crate) supporting named-field structs,
//! unit enums, and the `#[serde(skip_serializing)]` field attribute. The
//! `serde_json` vendor crate renders [`Value`] trees to strings.

pub use serde_derive::Serialize;

/// A JSON value tree — the intermediate representation [`Serialize`]
/// lowers into.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any finite number (non-finite values render as `null`, like serde_json).
    Num(f64),
    /// Unsigned integer (rendered without a decimal point).
    UInt(u64),
    /// Signed integer (rendered without a decimal point).
    Int(i64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object: ordered key/value pairs (insertion order preserved).
    Object(Vec<(String, Value)>),
}

/// Types that can lower themselves to a JSON [`Value`].
pub trait Serialize {
    /// Produce the JSON value tree for `self`.
    fn to_value(&self) -> Value;
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
    )*};
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64, usize);
impl_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Num(*self)
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Num(*self as f64)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(|v| v.to_value()).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(|v| v.to_value()).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(|v| v.to_value()).collect())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives() {
        assert_eq!(3usize.to_value(), Value::UInt(3));
        assert_eq!((-2i32).to_value(), Value::Int(-2));
        assert_eq!(1.5f64.to_value(), Value::Num(1.5));
        assert_eq!(true.to_value(), Value::Bool(true));
        assert_eq!("x".to_value(), Value::Str("x".into()));
        assert_eq!(Option::<u32>::None.to_value(), Value::Null);
    }

    #[test]
    fn containers() {
        assert_eq!(vec![1u32, 2].to_value(), Value::Array(vec![Value::UInt(1), Value::UInt(2)]));
        assert_eq!(
            [1usize, 2, 3].to_value(),
            Value::Array(vec![Value::UInt(1), Value::UInt(2), Value::UInt(3)])
        );
    }
}
