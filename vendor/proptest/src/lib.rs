//! Offline stand-in for the `proptest` crate.
//!
//! Supports the subset this workspace's tests use: the [`proptest!`] macro
//! over functions whose arguments are drawn from integer/float range
//! strategies, `prop_assert!`/`prop_assert_eq!`/`prop_assume!`, and
//! [`ProptestConfig::with_cases`]. Sampling is deterministic per test name,
//! so failures reproduce; there is no shrinking — the failing inputs are
//! printed instead.

/// Number of random cases to run per property (default; the real proptest
/// uses 256 — 64 keeps the serial single-CPU CI fast while still sweeping
/// the mixed-radix/rank-count spaces these tests quantify over).
pub const DEFAULT_CASES: u32 = 64;

/// Per-test configuration.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of successful (non-rejected) cases required.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: DEFAULT_CASES }
    }
}

/// Why a single test case did not succeed.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is retried with fresh
    /// samples and does not count toward the case budget.
    Reject,
    /// `prop_assert!` failed.
    Fail(String),
}

/// Deterministic RNG driving the sampler (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded RNG; the [`proptest!`] macro seeds from the test name so each
    /// property gets a reproducible stream.
    pub fn new(seed: u64) -> TestRng {
        TestRng { state: seed ^ 0x5DEECE66D }
    }

    /// Seed derived from a test name (FNV-1a).
    pub fn seed_from_name(name: &str) -> u64 {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The sampled type.
    type Value: std::fmt::Debug;

    /// Draw one sample.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + u * (self.end - self.start)
    }
}

impl Strategy for std::ops::Range<f32> {
    type Value = f32;

    fn sample(&self, rng: &mut TestRng) -> f32 {
        ((self.start as f64)..(self.end as f64)).sample(rng) as f32
    }
}

/// Everything tests import.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        Strategy, TestCaseError,
    };
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ (<$crate::ProptestConfig as ::core::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let mut rng =
                    $crate::TestRng::new($crate::TestRng::seed_from_name(stringify!($name)));
                let mut done = 0u32;
                let mut attempts = 0u32;
                while done < cfg.cases {
                    attempts += 1;
                    assert!(
                        attempts <= cfg.cases.saturating_mul(64),
                        "proptest: too many rejected cases in {}",
                        stringify!($name)
                    );
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                    let result: ::core::result::Result<(), $crate::TestCaseError> = (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    match result {
                        Ok(()) => done += 1,
                        Err($crate::TestCaseError::Reject) => {}
                        Err($crate::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest case failed: {msg}\n  inputs: {}",
                                [$(format!("{} = {:?}", stringify!($arg), $arg)),+].join(", ")
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Assert inside a property body; failure reports the sampled inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Equality assert inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` != `{:?}` ({} != {})",
            left, right, stringify!($a), stringify!($b)
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(left == right, $($fmt)+);
    }};
}

/// Inequality assert inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{:?}` == `{:?}` ({} == {})",
            left,
            right,
            stringify!($a),
            stringify!($b)
        );
    }};
}

/// Reject the current case (retried with fresh samples, not counted).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_in_bounds(n in 1usize..10, x in 0.0f64..1.0, k in 2u64..=5) {
            prop_assert!((1..10).contains(&n));
            prop_assert!((0.0..1.0).contains(&x));
            prop_assert!((2..=5).contains(&k));
        }

        #[test]
        fn assume_rejects(n in 0usize..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn deterministic_seeding() {
        let mut a = crate::TestRng::new(crate::TestRng::seed_from_name("t"));
        let mut b = crate::TestRng::new(crate::TestRng::seed_from_name("t"));
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
