//! Tier-1 SIMD equivalence gate: the vectorized backend must agree with
//! the portable scalar reference on every kernel, and the end-to-end
//! solver must be insensitive to the backend choice.
//!
//! Two layers:
//! - proptest cases drive every `claire-simd` kernel with random sizes —
//!   including ragged tails (`n % 4 != 0`) — under the vector backends and
//!   require ≤1e-12 relative agreement (the FMA contract: one rounding
//!   instead of two, never a different algorithm); the fused
//!   update+reduction kernels are additionally compared against their
//!   unfused pairs on all three backends (scalar, portable, avx2);
//! - a smoke registration solve under `CLAIRE_SIMD=scalar`, `=portable`,
//!   and `=auto` must reach the same Gauss–Newton iteration count and the
//!   same final mismatch to 6 significant digits.
//!
//! The backend override is process-global, so every test serializes on one
//! mutex before flipping it. On hosts without AVX2+FMA the `auto` side
//! resolves to scalar and the comparisons pass trivially.

use std::sync::Mutex;

use claire::prelude::*;
use claire_simd::Choice;
use proptest::prelude::*;

/// Serializes backend flips across this binary's tests.
static LOCK: Mutex<()> = Mutex::new(());

/// Run `f` under both backends and return (scalar result, auto result).
/// Takes the lock so concurrent tests cannot observe a half-flipped state.
fn both<R>(mut f: impl FnMut() -> R) -> (R, R) {
    let _g = LOCK.lock().unwrap_or_else(|p| p.into_inner());
    claire_simd::force_backend(Some(Choice::Scalar));
    let s = f();
    claire_simd::force_backend(Some(Choice::Avx2));
    let v = f();
    claire_simd::force_backend(None);
    (s, v)
}

fn assert_close(a: f64, b: f64, what: &str) {
    let tol = 1e-12 * b.abs().max(1.0);
    assert!((a - b).abs() <= tol, "{what}: scalar {b} vs simd {a} (diff {})", (a - b).abs());
}

fn assert_slices_close(a: &[Real], b: &[Real], what: &str) {
    assert_eq!(a.len(), b.len());
    for (i, (&x, &y)) in a.iter().zip(b).enumerate() {
        assert_close(x, y, &format!("{what}[{i}]"));
    }
}

/// Deterministic value stream (SplitMix64) so each proptest case derives
/// its vectors from a sampled `seed` — the vendored proptest shim only
/// samples scalars from ranges.
fn fill(seed: u64, n: usize, lo: f64, hi: f64) -> Vec<f64> {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(0x517C_C1B7_2722_0A95);
    (0..n)
        .map(|_| {
            state = state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            let u = ((z ^ (z >> 31)) >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            lo + u * (hi - lo)
        })
        .collect()
}

/// Run `f` under one forced backend, holding the flip lock.
fn on_backend<R>(choice: Choice, mut f: impl FnMut() -> R) -> R {
    let _g = LOCK.lock().unwrap_or_else(|p| p.into_inner());
    claire_simd::force_backend(Some(choice));
    let r = f();
    claire_simd::force_backend(None);
    r
}

/// Every dispatch arm the fused kernels must agree across.
const ALL_BACKENDS: [Choice; 3] = [Choice::Scalar, Choice::Portable, Choice::Avx2];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // n in 0..131 sweeps full 4-lane vectors, ragged tails (n % 4 != 0),
    // and sub-vector lengths (0..=3) for every kernel below.

    // Fused update+reduction kernels vs. their unfused pairs, on all three
    // backends (scalar, portable, avx2): the fused single-pass variants
    // must agree with update-then-reduce to ≤1e-12 relative — same
    // arithmetic, at most an FMA/chunked-fold rounding difference. The
    // unfused reference is computed on the scalar backend so every arm is
    // also pinned against one common answer.
    #[test]
    fn fused_kernels_match_unfused_on_all_backends(
        n in 0usize..131,
        seed in 0u64..1_000_000,
        a in -3.0f64..3.0,
    ) {
        let x = fill(seed, n, -100.0, 100.0);
        let y = fill(seed + 1, n, -100.0, 100.0);

        // scalar unfused reference: update pass, then reduction pass
        let (r_axpy, d_axpy, r_aypx, d_aypx, r_sa, d_sa) = on_backend(Choice::Scalar, || {
            let mut ya = y.clone();
            claire_simd::axpy(a, &x, &mut ya);
            let da = claire_simd::dot(&ya, &ya);
            let mut yp = y.clone();
            claire_simd::aypx(a, &x, &mut yp);
            let dp = claire_simd::dot(&yp, &yp);
            let mut o = y.clone();
            claire_simd::scale(a, &mut o);
            claire_simd::axpy(1.0, &x, &mut o); // o = a·y + x
            let ds = claire_simd::dot(&o, &o);
            (ya, da, yp, dp, o, ds)
        });

        for choice in ALL_BACKENDS {
            let (fa, fda, fp, fdp, fo, fds) = on_backend(choice, || {
                let mut ya = y.clone();
                let da = claire_simd::axpy_dot(a, &x, &mut ya);
                let mut yp = y.clone();
                let dp = claire_simd::aypx_norm2(a, &x, &mut yp);
                let mut o = vec![0.0; n];
                let ds = claire_simd::scale_add_norm(a, &y, &x, &mut o);
                (ya, da, yp, dp, o, ds)
            });
            let tag = format!("{choice:?}");
            assert_slices_close(&fa, &r_axpy, &format!("axpy_dot data [{tag}]"));
            assert_close(fda, d_axpy, &format!("axpy_dot reduction [{tag}]"));
            assert_slices_close(&fp, &r_aypx, &format!("aypx_norm2 data [{tag}]"));
            assert_close(fdp, d_aypx, &format!("aypx_norm2 reduction [{tag}]"));
            assert_slices_close(&fo, &r_sa, &format!("scale_add_norm data [{tag}]"));
            assert_close(fds, d_sa, &format!("scale_add_norm reduction [{tag}]"));
        }
    }

    // The scaled fd8 combine (inv_h·s folded into one sweep) must match
    // combine-then-scale on every backend.
    #[test]
    fn fd8_combine_scale_matches_on_all_backends(
        n in 0usize..131,
        seed in 0u64..1_000_000,
        inv_h in 0.1f64..10.0,
        s in -4.0f64..4.0,
    ) {
        let rows: Vec<Vec<Real>> = (0..8).map(|r| fill(seed + r, n, -100.0, 100.0)).collect();
        let cv = fill(seed + 8, 4, -1.0, 1.0);
        let c = [cv[0], cv[1], cv[2], cv[3]];
        let plus: [&[Real]; 4] = [&rows[0], &rows[1], &rows[2], &rows[3]];
        let minus: [&[Real]; 4] = [&rows[4], &rows[5], &rows[6], &rows[7]];
        let reference = on_backend(Choice::Scalar, || {
            let mut out = vec![0.0 as Real; n];
            claire_simd::fd8_combine(&mut out, &plus, &minus, &c, inv_h);
            claire_simd::scale(s, &mut out);
            out
        });
        for choice in ALL_BACKENDS {
            let fused = on_backend(choice, || {
                let mut out = vec![0.0 as Real; n];
                claire_simd::fd8_combine_scale(&mut out, &plus, &minus, &c, inv_h, s);
                out
            });
            assert_slices_close(&fused, &reference, &format!("fd8_combine_scale [{choice:?}]"));
        }
    }

    #[test]
    fn elementwise_ops_match(n in 0usize..131, seed in 0u64..1_000_000, a in -3.0f64..3.0) {
        let x = fill(seed, n, -100.0, 100.0);
        let y = fill(seed + 1, n, -100.0, 100.0);
        let s = fill(seed + 2, n, -100.0, 100.0);
        let (r_scalar, r_simd) = both(|| {
            let mut ys = y.clone();
            claire_simd::scale(a, &mut ys);
            let mut ya = y.clone();
            claire_simd::axpy(a, &x, &mut ya);
            let mut yp = y.clone();
            claire_simd::aypx(a, &x, &mut yp);
            let mut sp = s.clone();
            claire_simd::add_scaled_product(a, &x, &y, &mut sp);
            (ys, ya, yp, sp)
        });
        assert_slices_close(&r_simd.0, &r_scalar.0, "scale");
        assert_slices_close(&r_simd.1, &r_scalar.1, "axpy");
        assert_slices_close(&r_simd.2, &r_scalar.2, "aypx");
        assert_slices_close(&r_simd.3, &r_scalar.3, "add_scaled_product");
    }

    #[test]
    fn reductions_match(n in 0usize..131, seed in 0u64..1_000_000) {
        let x = fill(seed, n, -100.0, 100.0);
        let y = fill(seed + 1, n, -100.0, 100.0);
        let (r_scalar, r_simd) = both(|| {
            (claire_simd::dot(&x, &y), claire_simd::sum(&x), claire_simd::max_abs(&x))
        });
        assert_close(r_simd.0, r_scalar.0, "dot");
        assert_close(r_simd.1, r_scalar.1, "sum");
        assert_close(r_simd.2, r_scalar.2, "max_abs");
    }

    #[test]
    fn fd8_combine_matches(n in 0usize..131, seed in 0u64..1_000_000, inv_h in 0.1f64..10.0) {
        let rows: Vec<Vec<Real>> = (0..8).map(|r| fill(seed + r, n, -100.0, 100.0)).collect();
        let cv = fill(seed + 8, 4, -1.0, 1.0);
        let c = [cv[0], cv[1], cv[2], cv[3]];
        let plus: [&[Real]; 4] = [&rows[0], &rows[1], &rows[2], &rows[3]];
        let minus: [&[Real]; 4] = [&rows[4], &rows[5], &rows[6], &rows[7]];
        let (r_scalar, r_simd) = both(|| {
            let mut out = vec![0.0 as Real; n];
            claire_simd::fd8_combine(&mut out, &plus, &minus, &c, inv_h);
            out
        });
        assert_slices_close(&r_simd, &r_scalar, "fd8_combine");
    }

    #[test]
    fn interp_kernels_match(
        t in 0.0f64..1.0,
        base in 0usize..3,
        rs in 4usize..8,
        seed in 0u64..1_000_000,
    ) {
        let (w_scalar, w_simd) = both(|| claire_simd::lagrange_weights(t));
        assert_slices_close(&w_simd, &w_scalar, "lagrange_weights");

        let ps = 4 * rs; // 4 rows per plane, rows `rs` apart
        let body = fill(seed, base + 3 * ps + 3 * rs + 4, -100.0, 100.0);
        let (w1, w2, w3) = (
            claire_simd::lagrange_weights(t),
            claire_simd::lagrange_weights(1.0 - t),
            claire_simd::lagrange_weights(t * t),
        );
        let (r_scalar, r_simd) =
            both(|| claire_simd::cubic_accumulate(&body, base, ps, rs, &w1, &w2, &w3));
        assert_close(r_simd, r_scalar, "cubic_accumulate");
    }

    #[test]
    fn complex_kernels_match(m in 0usize..131, seed in 0u64..1_000_000, s in -2.0f64..2.0) {
        let a = fill(seed, 2 * m, -100.0, 100.0);
        let b = fill(seed + 1, 2 * m, -100.0, 100.0);
        let (r_scalar, r_simd) = both(|| {
            let mut d = a.clone();
            claire_simd::cpx_mul(&mut d, &b);
            let mut o = vec![0.0 as Real; a.len()];
            claire_simd::cpx_mul_into(&mut o, &a, &b);
            let mut cj = a.clone();
            claire_simd::cpx_conj(&mut cj);
            let mut cs = a.clone();
            claire_simd::cpx_conj_scale(&mut cs, s);
            (d, o, cj, cs)
        });
        assert_slices_close(&r_simd.0, &r_scalar.0, "cpx_mul");
        assert_slices_close(&r_simd.1, &r_scalar.1, "cpx_mul_into");
        assert_slices_close(&r_simd.2, &r_scalar.2, "cpx_conj");
        assert_slices_close(&r_simd.3, &r_scalar.3, "cpx_conj_scale");
    }

    #[test]
    fn radix2_butterfly_matches(m in 1usize..18, ws in 1usize..4, seed in 0u64..1_000_000) {
        // full twiddle table for a length-2m·ws transform, like fft_rec uses
        let nn = 2 * m * ws;
        let tw: Vec<Real> = (0..nn)
            .flat_map(|j| {
                let theta = -2.0 * std::f64::consts::PI * j as f64 / nn as f64;
                [theta.cos() as Real, theta.sin() as Real]
            })
            .collect();
        let lo0 = fill(seed, 2 * m, -1.0, 1.0);
        let hi0 = fill(seed + 7, 2 * m, -1.0, 1.0);
        let (r_scalar, r_simd) = both(|| {
            let mut lo = lo0.clone();
            let mut hi = hi0.clone();
            claire_simd::cpx_radix2_combine(&mut lo, &mut hi, &tw, ws);
            (lo, hi)
        });
        assert_slices_close(&r_simd.0, &r_scalar.0, "radix2 lo");
        assert_slices_close(&r_simd.1, &r_scalar.1, "radix2 hi");
    }
}

/// Within one backend the kernels must be bitwise deterministic: same
/// inputs, same bits, run to run.
#[test]
fn backend_is_bitwise_deterministic() {
    let _g = LOCK.lock().unwrap_or_else(|p| p.into_inner());
    for choice in [Choice::Scalar, Choice::Portable, Choice::Avx2] {
        claire_simd::force_backend(Some(choice));
        let x: Vec<Real> = (0..1003).map(|i| ((i * 37 % 101) as Real) / 17.0 - 2.5).collect();
        let y: Vec<Real> = (0..1003).map(|i| ((i * 23 % 97) as Real) / 13.0 - 3.1).collect();
        let d1 = claire_simd::dot(&x, &y);
        let d2 = claire_simd::dot(&x, &y);
        assert_eq!(d1.to_bits(), d2.to_bits(), "{choice:?} dot must be bitwise stable");
        let mut y1 = y.clone();
        let mut y2 = y.clone();
        claire_simd::axpy(1.2345, &x, &mut y1);
        claire_simd::axpy(1.2345, &x, &mut y2);
        for (a, b) in y1.iter().zip(&y2) {
            assert_eq!(a.to_bits(), b.to_bits(), "{choice:?} axpy must be bitwise stable");
        }
    }
    claire_simd::force_backend(None);
}

fn blob_pair(layout: Layout, shift: Real) -> (ScalarField, ScalarField) {
    let blob = move |cx: Real| {
        move |x: Real, y: Real, z: Real| {
            let d2 = (x - cx).powi(2) + (y - 3.0).powi(2) + (z - 3.0).powi(2);
            (-d2 / 1.2).exp()
        }
    };
    (ScalarField::from_fn(layout, blob(3.0)), ScalarField::from_fn(layout, blob(3.0 + shift)))
}

/// The solver must take the same Gauss–Newton path regardless of backend:
/// identical iteration counts, final mismatch equal to 6 significant
/// digits. This is the contract that lets `CLAIRE_SIMD` be a pure
/// performance knob.
#[test]
fn smoke_solve_is_backend_insensitive() {
    let _g = LOCK.lock().unwrap_or_else(|p| p.into_inner());
    claire::par::set_threads(1);
    let cfg = RegistrationConfig {
        nt: 2,
        precond: PrecondKind::InvA,
        continuation: false,
        grid_continuation: false,
        beta_target: 1e-2,
        max_gn_iter: 5,
        max_pcg_iter: 5,
        verbose: false,
        ..Default::default()
    };
    let layout = Layout::serial(Grid::cube(16));
    let (m0, m1) = blob_pair(layout, 0.5);

    let run = |choice: Choice| {
        claire_simd::force_backend(Some(choice));
        let mut comm = Comm::solo();
        let (_, report) = Claire::new(cfg).register(&m0, &m1, &mut comm);
        (report.gn_iters, report.rel_mismatch)
    };
    let (gn_scalar, mm_scalar) = run(Choice::Scalar);
    for (name, choice) in [("portable", Choice::Portable), ("auto", Choice::Auto)] {
        let (gn, mm) = run(choice);
        assert_eq!(gn_scalar, gn, "backend {name} must not change the GN iteration count");
        let rel = ((mm_scalar - mm) / mm_scalar.abs().max(1e-300)).abs();
        assert!(
            rel < 1e-6,
            "final mismatch must agree to 6 digits: scalar {mm_scalar} vs {name} {mm} (rel {rel:.2e})"
        );
    }
    claire_simd::force_backend(None);
    claire::par::set_threads(0);
}
