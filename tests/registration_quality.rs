//! End-to-end registration quality: mismatch reduction, velocity recovery,
//! preconditioner behaviour (the paper's §4.1–4.2 claims at test scale).

use claire::core::{Claire, PrecondKind, RegistrationConfig};
use claire::data::{brain, syn::syn_problem, truth};
use claire::grid::{Grid, Layout};
use claire::interp::IpOrder;
use claire::mpi::Comm;

#[test]
fn syn_registration_reduces_mismatch_substantially() {
    let mut comm = Comm::solo();
    let prob = syn_problem([20, 20, 20], &mut comm);
    let cfg = RegistrationConfig {
        nt: 4,
        beta_target: 1e-3,
        precond: PrecondKind::TwoLevelInvH0,
        max_gn_iter: 10,
        ..Default::default()
    };
    let mut solver = Claire::new(cfg);
    let (_, report) = solver.register_from(&prob.template, &prob.reference, None, "SYN", &mut comm);
    assert!(report.rel_mismatch < 0.35, "mismatch {}", report.rel_mismatch);
    assert!(report.jac_det_min > 0.0, "must stay diffeomorphic");
}

#[test]
fn recovered_velocity_correlates_with_truth() {
    let mut comm = Comm::solo();
    let layout = Layout::serial(Grid::cube(16));
    let prob = truth::fig3_problem(layout, &mut comm);
    let cfg = RegistrationConfig {
        nt: 4,
        ip_order: IpOrder::Cubic,
        beta_target: 1e-3,
        precond: PrecondKind::InvH0,
        max_gn_iter: 10,
        ..Default::default()
    };
    let mut solver = Claire::new(cfg);
    let (v, report) =
        solver.register_from(&prob.template, &prob.reference, None, "truth", &mut comm);
    assert!(report.rel_mismatch < 0.5, "mismatch {}", report.rel_mismatch);
    // cosine similarity between recovered and true velocity: registration
    // is ill-posed so we expect correlation, not identity
    let num = v.inner(&prob.v_true.clone(), &mut comm);
    let den = v.norm_l2(&mut comm) * prob.v_true.clone().norm_l2(&mut comm);
    let cosine = num / den.max(1e-300);
    // registration is ill-posed (many velocities explain the match), so at
    // this coarse resolution we expect directional correlation, not identity
    assert!(cosine > 0.3, "recovered velocity should point the right way: cos = {cosine}");
}

#[test]
fn invh0_needs_fewer_outer_pcg_iterations_than_inva() {
    // the paper's headline (Table 6): InvH0/2LInvH0 cut the PCG count 2-3x
    let mut comm = Comm::solo();
    let layout = Layout::serial(Grid::cube(16));
    let m0 = brain::subject("na02", layout, &mut comm);
    let m1 = brain::subject("na01", layout, &mut comm);
    let mut pcg_counts = Vec::new();
    for pc in [PrecondKind::InvA, PrecondKind::InvH0] {
        let cfg = RegistrationConfig {
            nt: 4,
            precond: pc,
            beta_target: 5e-3,
            max_gn_iter: 8,
            ..Default::default()
        };
        let mut solver = Claire::new(cfg);
        let (_, report) = solver.register_from(&m0, &m1, None, "na02", &mut comm);
        assert!(report.rel_mismatch < 0.7, "{:?}: mismatch {}", pc, report.rel_mismatch);
        pcg_counts.push(report.pcg_iters);
    }
    assert!(
        pcg_counts[1] <= pcg_counts[0],
        "InvH0 ({}) should need <= PCG iterations than InvA ({})",
        pcg_counts[1],
        pcg_counts[0]
    );
}

#[test]
fn continuation_improves_over_direct_solve() {
    // β-continuation is the paper's recommended setting: compared to
    // jumping straight to the target β it should be at least as good in
    // mismatch for the same iteration caps.
    let mut comm = Comm::solo();
    let layout = Layout::serial(Grid::cube(16));
    let m0 = brain::subject("na03", layout, &mut comm);
    let m1 = brain::subject("na01", layout, &mut comm);
    let run = |continuation: bool, comm: &mut Comm| {
        let cfg = RegistrationConfig {
            nt: 4,
            continuation,
            beta_target: 1e-3,
            precond: PrecondKind::InvA,
            max_gn_iter: if continuation { 6 } else { 25 },
            ..Default::default()
        };
        let mut solver = Claire::new(cfg);
        let (_, r) = solver.register_from(&m0, &m1, None, "na03", comm);
        r
    };
    let with = run(true, &mut comm);
    let without = run(false, &mut comm);
    assert!(
        with.rel_mismatch < without.rel_mismatch * 1.5,
        "continuation ({}) should be competitive with direct ({})",
        with.rel_mismatch,
        without.rel_mismatch
    );
    assert!(with.jac_det_min > 0.0);
}

#[test]
fn store_grad_does_not_change_results() {
    let mut comm = Comm::solo();
    let prob = syn_problem([12, 12, 12], &mut comm);
    let run = |store: bool, comm: &mut Comm| {
        let cfg = RegistrationConfig {
            nt: 4,
            store_grad: store,
            continuation: false,
            beta_target: 1e-2,
            precond: PrecondKind::InvA,
            fixed_pcg: Some(5),
            max_gn_iter: 3,
            grad_rtol: 1e-30,
            ..Default::default()
        };
        let mut solver = Claire::new(cfg);
        let (_, r) = solver.register_from(&prob.template, &prob.reference, None, "SYN", comm);
        r.rel_mismatch
    };
    let a = run(false, &mut comm);
    let b = run(true, &mut comm);
    assert!((a - b).abs() < 1e-12, "store_grad is a pure optimization: {a} vs {b}");
}
