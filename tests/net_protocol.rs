//! Wire-protocol tests for the networked claire-serve front door: framing
//! errors are typed, every envelope survives an encode/decode round trip
//! (images bitwise), and a version-mismatched client is refused by a real
//! server with a typed error before any job state is touched.

use std::io::Cursor;

use claire::core::{PrecondKind, RegistrationConfig};
use claire::grid::Real;
use claire::serve::wire::{
    decode_request, decode_response, encode, read_frame, send, write_frame, MAX_FRAME_BYTES,
};
use claire::serve::{
    ErrorCode, JobId, JobStatus, NetServer, NetServerConfig, Priority, Request, Response,
    ServiceConfig, StreamEvent, WireError, WireInput, WireJobSpec, PROTOCOL_VERSION,
};
use proptest::prelude::*;

fn round_trip_request(req: &Request) {
    let mut buf = Vec::new();
    send(&mut buf, req).expect("send to Vec");
    let payload = read_frame(&mut Cursor::new(&buf), MAX_FRAME_BYTES).expect("read own frame");
    let back = decode_request(&payload).expect("decode own request");
    assert_eq!(&back, req);
}

fn round_trip_response(resp: &Response) {
    let back = decode_response(&encode(resp)).expect("decode own response");
    assert_eq!(&back, resp);
}

fn sample_spec(input: WireInput) -> WireJobSpec {
    WireJobSpec {
        label: "round-trip".into(),
        tenant: "tenant-a".into(),
        config: RegistrationConfig {
            nt: 2,
            max_gn_iter: 3,
            max_pcg_iter: 4,
            continuation: false,
            precond: PrecondKind::InvA,
            verbose: false,
            ..Default::default()
        },
        input,
        priority: Priority::High,
        deadline_ms: Some(1234),
    }
}

#[test]
fn every_request_variant_round_trips() {
    let id = JobId::from_u64(42);
    for req in [
        Request::Hello { protocol: PROTOCOL_VERSION, client: "test".into() },
        Request::Submit { spec: sample_spec(WireInput::Synthetic { n: [8, 6, 4] }) },
        Request::Status { id },
        Request::Cancel { id },
        Request::Result { id },
        Request::Stream { id },
    ] {
        round_trip_request(&req);
    }
}

#[test]
fn every_response_variant_round_trips() {
    let id = JobId::from_u64(7);
    for resp in [
        Response::Hello { protocol: PROTOCOL_VERSION, server: "test".into() },
        Response::Submitted { id, cached: true },
        Response::Status { id, status: JobStatus::Running },
        Response::Cancelled { id, delivered: false },
        Response::Event { id, event: StreamEvent::GnIter { iter: 3 } },
        Response::Event { id, event: StreamEvent::Terminal { status: JobStatus::Succeeded } },
        Response::Error { code: ErrorCode::QuotaExceeded, message: "slow down".into() },
    ] {
        round_trip_response(&resp);
    }
}

#[test]
fn framing_errors_are_typed() {
    // truncated: the header promises more bytes than the stream holds
    let mut buf = Vec::new();
    write_frame(&mut buf, b"0123456789").unwrap();
    buf.truncate(buf.len() - 4);
    match read_frame(&mut Cursor::new(&buf), MAX_FRAME_BYTES) {
        Err(WireError::Truncated { expected: 10, got: 6 }) => {}
        other => panic!("expected Truncated, got {other:?}"),
    }

    // oversized: length prefix beyond the cap is refused before allocating
    let mut buf = Vec::new();
    write_frame(&mut buf, &[0u8; 64]).unwrap();
    match read_frame(&mut Cursor::new(&buf), 16) {
        Err(WireError::FrameTooLarge { len: 64, max: 16 }) => {}
        other => panic!("expected FrameTooLarge, got {other:?}"),
    }

    // garbage payloads decode to typed errors (Malformed for non-schema
    // bytes, Protocol for a well-formed frame with an unknown type tag)
    for garbage in [&b"not json"[..], b"{\"type\":\"warp_core\"}", b"[1,2,3]", b"{}"] {
        let mut buf = Vec::new();
        write_frame(&mut buf, garbage).unwrap();
        let payload = read_frame(&mut Cursor::new(&buf), MAX_FRAME_BYTES).unwrap();
        match decode_request(&payload) {
            Err(WireError::Malformed(_)) | Err(WireError::Protocol(_)) => {}
            other => panic!("expected a typed decode error for {garbage:?}, got {other:?}"),
        }
    }

    // clean EOF at a frame boundary is Closed (peer hung up), not an error
    match read_frame(&mut Cursor::new(&[][..]), MAX_FRAME_BYTES) {
        Err(WireError::Closed) => {}
        other => panic!("expected Closed, got {other:?}"),
    }
}

#[test]
fn version_mismatch_is_refused_by_a_live_server() {
    let mut server = NetServer::bind(
        "127.0.0.1:0",
        NetServerConfig::default().service(ServiceConfig::default().workers(1)),
    )
    .expect("bind");
    let mut conn = std::net::TcpStream::connect(server.local_addr()).expect("connect");
    send(&mut conn, &Request::Hello { protocol: PROTOCOL_VERSION + 1, client: "future".into() })
        .expect("send future hello");
    let payload = read_frame(&mut conn, MAX_FRAME_BYTES).expect("refusal frame");
    match decode_response(&payload).expect("typed refusal") {
        Response::Error { code: ErrorCode::VersionMismatch, message } => {
            assert!(message.contains(&PROTOCOL_VERSION.to_string()));
        }
        other => panic!("expected a VersionMismatch error, got {other:?}"),
    }
    // the server closes the connection after the refusal
    match read_frame(&mut conn, MAX_FRAME_BYTES) {
        Err(WireError::Closed) | Err(WireError::Io(_)) => {}
        other => panic!("expected the connection to be closed, got {other:?}"),
    }
    server.shutdown();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Pair images with arbitrary finite samples survive the wire bitwise,
    /// and the envelope stays equal under encode/decode.
    #[test]
    fn pair_submissions_round_trip_bitwise(
        n1 in 2usize..5, n2 in 2usize..5, n3 in 2usize..5, seed in 0u64..1000
    ) {
        let n = [n1, n2, n3];
        let len = n1 * n2 * n3;
        // deterministic pseudo-random samples spanning magnitudes and signs
        let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let u = (state >> 11) as f64 / (1u64 << 53) as f64;
            ((u - 0.5) * 2e6) as Real
        };
        let template: Vec<Real> = (0..len).map(|_| next()).collect();
        let reference: Vec<Real> = (0..len).map(|_| next()).collect();
        let spec = sample_spec(WireInput::Pair {
            n,
            template: template.clone(),
            reference: reference.clone(),
        });
        let req = Request::Submit { spec };
        let back = decode_request(&encode(&req)).expect("decode");
        let Request::Submit { spec: got } = back else { panic!("wrong variant") };
        let WireInput::Pair { template: t2, reference: r2, .. } = &got.input else {
            panic!("wrong input variant")
        };
        for (a, b) in template.iter().zip(t2) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
        for (a, b) in reference.iter().zip(r2) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
        // and the rehydrated JobSpec carries the same samples
        let job = got.into_spec().expect("valid spec");
        let claire::serve::JobInput::Pair { template: tf, .. } = &job.input else {
            panic!("wrong job input")
        };
        for (a, b) in template.iter().zip(tf.data()) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    /// Arbitrary byte soup never panics the frame reader or the decoders.
    #[test]
    fn arbitrary_bytes_never_panic(len in 0usize..64, seed in 0u64..5000) {
        let mut state = seed.wrapping_add(0xfeed);
        let bytes: Vec<u8> = (0..len)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(97);
                (state >> 32) as u8
            })
            .collect();
        let _ = read_frame(&mut Cursor::new(&bytes), 1 << 16);
        let _ = decode_request(&bytes);
        let _ = decode_response(&bytes);
    }
}
