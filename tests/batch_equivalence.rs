//! Batch-vs-sequential equivalence: K pairs solved by `BatchSolver` must
//! produce **bitwise-identical** velocity fields and mismatch values to K
//! independent `Claire` solves.
//!
//! The batch path interleaves the pairs' Gauss–Newton iterations and shares
//! the per-grid scaffolding (FFT symbols, 2LInvH0 transfer operators), but
//! each pair steps through the exact same `GnState` loop body as the
//! sequential driver — so not just "close", but every bit equal, on both
//! SIMD backends. Any drift here means the interleave changed arithmetic.

use claire::prelude::*;
use proptest::prelude::*;

fn blob_pair(layout: Layout, shift: Real, off: Real) -> (ScalarField, ScalarField) {
    let blob = move |cx: Real, cy: Real| {
        move |x: Real, y: Real, z: Real| {
            let d2 = (x - cx).powi(2) + (y - cy).powi(2) + (z - 3.0).powi(2);
            (-d2 / 1.2).exp()
        }
    };
    (
        ScalarField::from_fn(layout, blob(3.0, 3.0 + off)),
        ScalarField::from_fn(layout, blob(3.0 + shift, 3.0 + off)),
    )
}

fn config(precond: PrecondKind, grad_rtol: f64) -> RegistrationConfig {
    RegistrationConfig {
        nt: 2,
        precond,
        continuation: true,
        grid_continuation: false,
        beta_target: 1e-1,
        max_gn_iter: 4,
        max_pcg_iter: 4,
        grad_rtol,
        verbose: false,
        ..Default::default()
    }
}

/// Assert two velocity fields are bitwise identical, component by component.
fn assert_bitwise_eq(a: &VectorField, b: &VectorField, label: &str) {
    for d in 0..3 {
        for (i, (x, y)) in a.c[d].data().iter().zip(b.c[d].data()).enumerate() {
            assert!(
                x.to_bits() == y.to_bits(),
                "{label}: component {d} sample {i} differs: {x:e} vs {y:e}"
            );
        }
    }
}

/// Solve the given shifts sequentially and batched; demand bit equality.
fn check_equivalence(shifts: &[(Real, Real)], cfg: RegistrationConfig) {
    claire::par::set_threads(1);
    let layout = Layout::serial(Grid::cube(16));
    let mut comm = Comm::solo();

    // sequential reference solves
    let mut seq = Vec::new();
    for &(shift, off) in shifts {
        let (m0, m1) = blob_pair(layout, shift, off);
        let (v, report) = Claire::new(cfg).register(&m0, &m1, &mut comm);
        seq.push((v, report.rel_mismatch));
    }

    // one batched solve over the same pairs
    let pairs: Vec<BatchPair> = shifts
        .iter()
        .enumerate()
        .map(|(i, &(shift, off))| {
            let (m0, m1) = blob_pair(layout, shift, off);
            BatchPair::new(format!("pair{i}"), m0, m1)
        })
        .collect();
    let outcome = BatchSolver::new(cfg).solve(pairs).expect("valid batch");
    assert_eq!(outcome.items.len(), shifts.len());
    assert!(outcome.stats.rounds > 0);

    for (i, (item, (v_seq, mm_seq))) in outcome.items.iter().zip(&seq).enumerate() {
        let (v_batch, report) = item.outcome.as_ref().expect("batch member should succeed");
        assert_bitwise_eq(v_batch, v_seq, &format!("pair {i}"));
        assert!(
            report.rel_mismatch.to_bits() == mm_seq.to_bits(),
            "pair {i}: mismatch differs: {} vs {}",
            report.rel_mismatch,
            mm_seq
        );
    }
}

#[test]
fn batch_matches_sequential_bitwise_on_both_backends() {
    // mixed shifts: the larger ones need all iterations, the tiny one
    // converges (retires) early — the interleave must handle both
    let shifts = [(0.5, 0.0), (0.02, 0.1), (0.35, -0.2)];
    for choice in [claire_simd::Choice::Scalar, claire_simd::Choice::Auto] {
        claire_simd::force_backend(Some(choice));
        check_equivalence(&shifts, config(PrecondKind::InvA, 5e-2));
        check_equivalence(&shifts[..2], config(PrecondKind::TwoLevelInvH0, 5e-2));
    }
    claire_simd::force_backend(None);
}

#[test]
fn batch_with_grid_continuation_matches_sequential() {
    let mut cfg = config(PrecondKind::InvA, 5e-2);
    cfg.grid_continuation = true;
    check_equivalence(&[(0.5, 0.0), (0.3, 0.15)], cfg);
}

#[test]
fn cancelled_member_retires_without_disturbing_the_rest() {
    claire::par::set_threads(1);
    let layout = Layout::serial(Grid::cube(16));
    let mut comm = Comm::solo();
    let cfg = config(PrecondKind::InvA, 1e-12);

    let (m0a, m1a) = blob_pair(layout, 0.5, 0.0);
    let (v_seq, _) = Claire::new(cfg).register(&m0a, &m1a, &mut comm);

    // pair 0: normal; pair 1: pre-cancelled
    let token = claire::core::CancelToken::new();
    token.cancel();
    let (m0b, m1b) = blob_pair(layout, 0.3, 0.2);
    let pairs = vec![
        BatchPair::new("ok", m0a.clone(), m1a.clone()),
        BatchPair::new("cancelled", m0b, m1b)
            .with_hooks(claire::core::SolverHooks::with_cancel(token)),
    ];
    let outcome = BatchSolver::new(cfg).solve(pairs).expect("valid batch");

    let (v_ok, _) = outcome.items[0].outcome.as_ref().expect("uncancelled member succeeds");
    assert_bitwise_eq(v_ok, &v_seq, "uncancelled member");

    let err = outcome.items[1].outcome.as_ref().expect_err("cancelled member fails");
    let msg = err.to_string();
    assert!(msg.contains("cancelled"), "{msg}");
    assert!(msg.contains("after 0 Gauss-Newton"), "{msg}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Random batch sizes K ∈ {1, 2, 5} with random shift mixes (some
    /// converging early) stay bitwise equal to sequential solves.
    #[test]
    fn random_batches_match_sequential(
        k_idx in 0usize..3,
        seed in 0u64..1000,
    ) {
        let k = [1usize, 2, 5][k_idx];
        let mut shifts = Vec::new();
        let mut s = seed;
        for _ in 0..k {
            // xorshift: deterministic pseudo-random shifts in [0.02, 0.5]
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            let shift = 0.02 + (s % 1000) as Real / 1000.0 * 0.48;
            let off = ((s >> 10) % 400) as Real / 1000.0 - 0.2;
            shifts.push((shift, off));
        }
        check_equivalence(&shifts, config(PrecondKind::InvA, 5e-2));
    }
}
