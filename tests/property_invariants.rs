//! Property-based tests of cross-crate invariants (proptest).

use claire::fft::{DistFft, Fft3};
use claire::grid::{ghost, redist, Grid, Layout, Real, ScalarField, VectorField};
use claire::interp::{kernel::interp_serial, IpOrder};
use claire::mpi::{run_cluster, Comm, Topology};
use proptest::prelude::*;

/// Deterministic pseudo-random field values from a seed.
fn seeded_field(layout: Layout, seed: u64) -> ScalarField {
    let mut f = ScalarField::zeros(layout);
    let i0 = layout.slab.i0 as u64;
    let [ni, n2, n3] = layout.local_dims();
    for il in 0..ni {
        for j in 0..n2 {
            for k in 0..n3 {
                let h = (i0 + il as u64)
                    .wrapping_mul(0x9E3779B97F4A7C15)
                    .wrapping_add((j as u64).wrapping_mul(0xD1B54A32D192ED03))
                    .wrapping_add((k as u64).wrapping_mul(0xA24BAED4963EE407))
                    .wrapping_add(seed);
                *f.at_mut(il, j, k) = ((h >> 17) % 2000) as Real / 1000.0 - 1.0;
            }
        }
    }
    f
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// FFT round-trips on random even-size grids (mixed radices).
    #[test]
    fn fft3_roundtrip_random_grids(
        n1 in 2usize..10, n2 in 2usize..10, half3 in 1usize..6, seed in 0u64..1000
    ) {
        let grid = Grid::new([n1.max(2), n2.max(2), 2 * half3]);
        let f = seeded_field(Layout::serial(grid), seed);
        let plan = Fft3::new(grid);
        let mut spec = vec![claire::fft::Cpx::ZERO; plan.spectral_len()];
        plan.forward(f.data(), &mut spec);
        let mut back = vec![0.0 as Real; grid.len()];
        plan.inverse(&mut spec, &mut back);
        for (a, b) in back.iter().zip(f.data()) {
            prop_assert!((a - b).abs() < 1e-8);
        }
    }

    /// Parseval / Plancherel for the distributed FFT on 2 ranks.
    #[test]
    fn dist_fft_preserves_energy(seed in 0u64..200) {
        let grid = Grid::new([8, 6, 4]);
        let res = run_cluster(Topology::new(2, 4), move |comm| {
            let layout = Layout::distributed(grid, comm);
            let f = seeded_field(layout, seed);
            let e_time = f.dot(&f, comm);
            let dfft = DistFft::new(grid, comm);
            let spec = dfft.forward(&f, comm);
            // Hermitian half-spectrum weights
            let n3c = spec.n3c();
            let mut local = 0.0f64;
            for idx in 0..spec.data.len() {
                let k = idx % n3c;
                let w = if k == 0 || k == grid.n[2] / 2 { 1.0 } else { 2.0 };
                local += w * spec.data[idx].norm_sqr();
            }
            let e_freq = comm.allreduce_sum_scalar(local) / grid.len() as f64;
            (e_time, e_freq)
        });
        let (et, ef) = res.outputs[0];
        prop_assert!((et - ef).abs() < 1e-6 * et.max(1.0), "{et} vs {ef}");
    }

    /// Interpolation is a convex-combination for trilinear: values stay
    /// within the field's range.
    #[test]
    fn trilinear_respects_bounds(seed in 0u64..200, qx in 0.0f64..1.0, qy in 0.0f64..1.0, qz in 0.0f64..1.0) {
        let grid = Grid::cube(8);
        let f = seeded_field(Layout::serial(grid), seed);
        let (lo, hi) = f.data().iter().fold((Real::MAX, Real::MIN), |(l, h), &x| (l.min(x), h.max(x)));
        let q = [
            qx as Real * claire::grid::TWO_PI,
            qy as Real * claire::grid::TWO_PI,
            qz as Real * claire::grid::TWO_PI,
        ];
        let v = interp_serial(&f, IpOrder::Linear, q);
        prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9, "{v} outside [{lo}, {hi}]");
    }

    /// Ghost halos agree with the periodic extension for random widths and
    /// rank counts.
    #[test]
    fn ghost_matches_periodic_extension(p in 1usize..5, width in 1usize..5, seed in 0u64..100) {
        let grid = Grid::new([12, 4, 4]);
        let res = run_cluster(Topology::new(p, 4), move |comm| {
            let layout = Layout::distributed(grid, comm);
            let f = seeded_field(layout, seed);
            let gf = ghost::exchange(&f, width, comm);
            // rebuild the full field to cross-check halos
            let full = redist::replicate(&f, comm);
            let mut max_err = 0.0 as Real;
            for ii in -(width as isize)..(layout.slab.ni + width) as isize {
                let gi = grid.wrap(0, layout.slab.i0 as isize + ii);
                for j in 0..4 {
                    for k in 0..4 {
                        max_err = max_err.max((gf.at(ii, j, k) - full.at(gi, j, k)).abs());
                    }
                }
            }
            max_err
        });
        for &e in &res.outputs {
            prop_assert!(e == 0.0, "halo mismatch {e}");
        }
    }

    /// The Gauss–Newton Hessian is symmetric positive semi-definite in the
    /// L2 inner product for random smooth velocities.
    #[test]
    fn hessian_spd_random_directions(seed in 0u64..20) {
        use claire::core::{PrecondKind, RegProblem, RegistrationConfig};
        use claire::opt::GnProblem;
        let mut comm = Comm::solo();
        let layout = Layout::serial(Grid::cube(8));
        let m0 = claire::data::brain::subject("na02", layout, &mut comm);
        let m1 = claire::data::brain::subject("na01", layout, &mut comm);
        let cfg = RegistrationConfig {
            nt: 4,
            ip_order: IpOrder::Cubic,
            precond: PrecondKind::InvA,
            continuation: false,
            ..Default::default()
        };
        let mut prob = RegProblem::new(m0, m1, cfg, &mut comm).expect("matching layouts by construction");
        prob.set_beta(0.1);
        let v = claire::data::brain::random_smooth_velocity(layout, seed, 0.2, 2);
        let _ = prob.gradient(&v, &mut comm);
        let x = claire::data::brain::random_smooth_velocity(layout, seed + 100, 1.0, 2);
        let hx = prob.hess_vec(&x, &mut comm);
        let xhx = x.inner(&hx, &mut comm);
        prop_assert!(xhx > 0.0, "curvature {xhx} must be positive");
    }
}

/// Adjoint-transport duality: for divergence-free v, the continuity and
/// advection equations coincide, and ⟨m(1), λ(1)⟩ ≈ ⟨m(0), λ(0)⟩ (the
/// discrete adjoint pairing is conserved along the flow).
#[test]
fn transport_adjoint_pairing_conserved() {
    use claire::interp::Interpolator;
    use claire::semilag::{Trajectory, Transport};
    let mut comm = Comm::solo();
    let layout = Layout::serial(Grid::cube(24));
    // divergence-free velocity: v = (sin x2, sin x3, sin x1)
    let v = VectorField::from_fns(
        layout,
        |_, y, _| 0.3 * y.sin(),
        |_, _, z| 0.3 * z.sin(),
        |x, _, _| 0.3 * x.sin(),
    );
    let m0 = ScalarField::from_fn(layout, |x, y, _| (x + y).sin());
    let lam1 = ScalarField::from_fn(layout, |_, y, z| (y - z).cos());
    let mut ip = Interpolator::new(IpOrder::Cubic);
    let tr = Transport::new(8, IpOrder::Cubic);
    let traj = Trajectory::compute(&v, 8, &mut ip, &mut comm);
    let m = tr.solve_state(&traj, &m0, false, &mut ip, &mut comm);
    let lam = tr.solve_adjoint(&traj, &lam1, &mut ip, &mut comm);
    let pair_end = m.final_state().inner(&lam1, &mut comm);
    let pair_start = m0.inner(&lam[0], &mut comm);
    let rel = ((pair_end - pair_start) / pair_end.abs().max(1e-12)).abs();
    assert!(rel < 2e-2, "adjoint pairing drift {rel}: {pair_start} vs {pair_end}");
}
