//! End-to-end tests of the observability subsystem: RunReport JSON
//! round-trips, span-tree nesting invariants, and the metrics-disabled
//! fast path.
//!
//! The span tracer and metrics registry are process-global (spans are
//! thread-local, the enable flag and registries are not), so every test
//! that toggles collection serializes on [`OBS_LOCK`].

use claire::obs::metrics::Counter;
use claire::obs::report::{KernelEntry, PhaseShares, RunReport, SCHEMA_KEYS};
use claire::obs::span::span;
use claire::prelude::*;
use serde::Value;
use std::sync::Mutex;

static OBS_LOCK: Mutex<()> = Mutex::new(());

fn field<'a>(v: &'a Value, key: &str) -> &'a Value {
    match v {
        Value::Object(pairs) => pairs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .unwrap_or_else(|| panic!("missing key {key}")),
        other => panic!("expected object, got {other:?}"),
    }
}

fn populated_report() -> RunReport {
    let mut run = RunReport::new("round-trip");
    run.grid = [64, 32, 32];
    run.nranks = 4;
    run.nt = 8;
    run.precond = "2LInvH0".to_string();
    run.summary.gn_iters = 12;
    run.summary.pcg_iters = 120;
    run.summary.rel_mismatch = 2.79e-2;
    run.summary.grad_rel = 3.2e-2;
    run.summary.time_total = 4.5;
    run.summary.converged = true;
    run.scheduling.job_id = 7;
    run.scheduling.priority = "high".to_string();
    run.scheduling.worker = 1;
    run.scheduling.queue_wait_secs = 0.25;
    run.scheduling.run_secs = 4.5;
    run.scheduling.total_secs = 4.75;
    run.scheduling.deadline_secs = 30.0;
    run.kernels = vec![
        KernelEntry { name: "fft_serial".into(), calls: 96, secs: 1.25 },
        KernelEntry { name: "interp".into(), calls: 48, secs: 2.0 },
    ];
    run.phases = PhaseShares::from_kernels(&run.kernels, 4.5);
    run
}

#[test]
fn run_report_json_round_trips() {
    let run = populated_report();
    let json = run.to_json();

    // parse back: every schema key present, values preserved
    let v = serde_json::from_str(&json).expect("RunReport JSON parses");
    for key in SCHEMA_KEYS {
        let _ = field(&v, key);
    }
    assert_eq!(field(&v, "label"), &Value::Str("round-trip".into()));
    assert_eq!(field(&v, "nranks"), &Value::UInt(4));
    let summary = field(&v, "summary");
    assert_eq!(field(summary, "gn_iters"), &Value::UInt(12));
    assert_eq!(field(summary, "converged"), &Value::Bool(true));
    assert_eq!(field(summary, "rel_mismatch"), &Value::Num(2.79e-2));
    let scheduling = field(&v, "scheduling");
    assert_eq!(field(scheduling, "job_id"), &Value::UInt(7));
    assert_eq!(field(scheduling, "priority"), &Value::Str("high".into()));
    assert_eq!(field(scheduling, "worker"), &Value::UInt(1));
    assert_eq!(field(scheduling, "queue_wait_secs"), &Value::Num(0.25));
    assert_eq!(field(scheduling, "total_secs"), &Value::Num(4.75));
    assert_eq!(field(scheduling, "deadline_secs"), &Value::Num(30.0));
    let grid = field(&v, "grid");
    assert_eq!(grid, &Value::Array(vec![Value::UInt(64), Value::UInt(32), Value::UInt(32)]));

    // render -> parse -> render is a fixed point (textual stability)
    let rendered = serde_json::to_string_pretty(&v).expect("re-render");
    assert_eq!(json, rendered);
}

#[test]
fn span_tree_nesting_invariants() {
    let _g = OBS_LOCK.lock().unwrap();
    claire::obs::begin();

    {
        let _root = span("solve");
        for _ in 0..3 {
            let _lvl = span("beta_level");
            let _it = span("gn.iter");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
    }
    let spans = claire::obs::span::take_spans();
    claire::obs::set_enabled(false);

    // every enter was matched by an exit: the tree has one closed root
    assert_eq!(spans.len(), 1);
    let root = &spans[0];
    assert_eq!(root.name, "solve");
    assert_eq!(root.calls, 1);

    // repeated same-name spans aggregate into one node
    assert_eq!(root.children.len(), 1);
    let lvl = &root.children[0];
    assert_eq!((lvl.name.as_str(), lvl.calls), ("beta_level", 3));
    assert_eq!(lvl.children.len(), 1);
    assert_eq!((lvl.children[0].name.as_str(), lvl.children[0].calls), ("gn.iter", 3));

    // child time is contained in parent time, recursively
    fn check(node: &claire::obs::span::SpanNode) {
        let child_sum: f64 = node.children.iter().map(|c| c.secs).sum();
        assert!(
            child_sum <= node.secs + 1e-9,
            "children of {} ({child_sum:.9}s) exceed parent ({:.9}s)",
            node.name,
            node.secs
        );
        for c in &node.children {
            check(c);
        }
    }
    check(root);
}

#[test]
fn open_spans_survive_a_reset() {
    let _g = OBS_LOCK.lock().unwrap();
    claire::obs::begin();
    {
        let _outer = span("outer");
        claire::obs::reset(); // e.g. a second begin() while a guard is open
        let _inner = span("inner");
    } // both guards drop here; neither may panic or corrupt the tree
      // The guard stack is balanced again: a fresh span records as a root,
      // and the pre-reset / mid-reset spans were discarded rather than leaked.
    {
        let _s = span("fresh");
    }
    let spans = claire::obs::span::take_spans();
    claire::obs::set_enabled(false);
    assert_eq!(spans.len(), 1);
    assert_eq!(spans[0].name, "fresh");
    assert_eq!(spans[0].calls, 1);
}

#[test]
fn disabled_metrics_are_inert_and_cheap() {
    let _g = OBS_LOCK.lock().unwrap();
    claire::obs::set_enabled(false);

    static DISABLED_ONLY: Counter = Counter::new("test.disabled_only");
    let t0 = std::time::Instant::now();
    const N: u64 = 10_000_000;
    for i in 0..N {
        DISABLED_ONLY.add(i & 1);
        let _s = span("test.disabled_span");
    }
    let secs = t0.elapsed().as_secs_f64();

    // inert: the counter never registered, the tracer never saw a span
    assert_eq!(DISABLED_ONLY.get(), 0);
    assert!(claire::obs::metrics::snapshot().iter().all(|e| e.key != "test.disabled_only"));
    assert!(claire::obs::span::take_spans().is_empty());

    // cheap: 10M disabled add+span pairs are one relaxed load + branch each;
    // even a debug build does this in well under a second per million.
    assert!(secs < 10.0, "disabled instrumentation too slow: {secs:.3}s for {N} iterations");
}

#[test]
fn solver_run_emits_complete_report() {
    let _g = OBS_LOCK.lock().unwrap();
    let mut comm = Comm::solo();
    let prob = syn_problem([12, 12, 12], &mut comm);
    let cfg = RegistrationConfig::builder()
        .nt(2)
        .beta(1e-2)
        .continuation(false)
        .precond(PrecondKind::InvA)
        .max_gn_iter(2)
        .max_pcg_iter(5)
        .build()
        .unwrap();

    begin_observing();
    let mut solver = Claire::new(cfg);
    let (_, report) = solver.register_from(&prob.template, &prob.reference, None, "SYN", &mut comm);
    let run = collect_run_report("SYN", &report, &comm);
    claire::obs::set_enabled(false);

    assert_eq!(run.grid, [12, 12, 12]);
    assert!(run.spans.iter().any(|s| s.name == "solve"), "span tree must be rooted at solve");
    assert!(!run.gn_trace.is_empty(), "per-GN-iteration records expected");
    assert!(run.gn_trace.iter().all(|r| r.beta == 1e-2));
    assert!(!run.kernels.is_empty());
    assert!(run.phases.total_secs > 0.0);
    assert!(run.metrics.iter().any(|e| e.key == "pcg.iters"));
    let json = run.to_json();
    let v = serde_json::from_str(&json).expect("emitted report parses");
    for key in SCHEMA_KEYS {
        let _ = field(&v, key);
    }
}

#[test]
fn builder_round_trips_through_prelude() {
    // the prelude exposes the whole front door: builder, error type, report
    let err: ClaireError = RegistrationConfig::builder().nt(0).build().unwrap_err();
    assert!(err.to_string().contains("nt"));
    let ok: ClaireResult<RegistrationConfig> = RegistrationConfig::builder().nt(4).build();
    assert_eq!(ok.unwrap().nt, 4);
}
