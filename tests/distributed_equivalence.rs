//! The distributed solver must produce the same numbers as the serial one:
//! every kernel (FFT, FD, interpolation, transport) and the full
//! registration are compared across rank counts.

use claire::core::{Claire, PrecondKind, RegistrationConfig};
use claire::data::syn::syn_problem;
use claire::grid::redist;
use claire::interp::IpOrder;
use claire::mpi::{run_cluster, Comm, Topology};

fn fixed_cfg() -> RegistrationConfig {
    RegistrationConfig {
        nt: 4,
        ip_order: IpOrder::Linear,
        precond: PrecondKind::InvA,
        continuation: false,
        beta_target: 1e-2,
        fixed_pcg: Some(5),
        max_gn_iter: 3,
        grad_rtol: 1e-30,
        ..Default::default()
    }
}

/// Run the fixed-work SYN registration on `p` ranks; return the gathered
/// velocity (rank 0) and the mismatch.
fn run_registration(p: usize, n: usize) -> (Vec<claire::grid::Real>, f64) {
    let size = [n, n, n];
    let res = run_cluster(Topology::new(p, 4), move |comm| {
        let prob = syn_problem(size, comm);
        let mut solver = Claire::new(fixed_cfg());
        let (v, report) = solver.register_from(&prob.template, &prob.reference, None, "SYN", comm);
        let gathered = redist::gather_vector(&v, comm);
        (
            gathered.map(|g| {
                let mut out = Vec::new();
                for c in &g.c {
                    out.extend_from_slice(c.data());
                }
                out
            }),
            report.rel_mismatch,
        )
    });
    let v = res.outputs[0].0.clone().expect("rank 0 gathers");
    (v, res.outputs[0].1)
}

#[test]
fn full_registration_matches_across_rank_counts() {
    let n = 16;
    let (v1, m1) = run_registration(1, n);
    for p in [2usize, 4] {
        let (vp, mp) = run_registration(p, n);
        assert!((m1 - mp).abs() < 1e-9, "p={p}: mismatch differs: {m1} vs {mp}");
        let max_dv = v1.iter().zip(&vp).map(|(&a, &b)| (a - b).abs()).fold(0.0, f64::max);
        assert!(max_dv < 1e-8, "p={p}: velocity fields differ by {max_dv}");
    }
}

#[test]
fn serial_solo_matches_one_rank_cluster() {
    // Comm::solo() (no threads) and a 1-rank cluster are the same machine
    let n = 12;
    let mut comm = Comm::solo();
    let prob = syn_problem([n, n, n], &mut comm);
    let mut solver = Claire::new(fixed_cfg());
    let (_, report_solo) =
        solver.register_from(&prob.template, &prob.reference, None, "SYN", &mut comm);

    let (_, mismatch_cluster) = run_registration(1, n);
    assert!((report_solo.rel_mismatch - mismatch_cluster).abs() < 1e-12);
}

#[test]
fn preconditioned_solves_match_distributed() {
    // 2LInvH0 exercises FFTs, grid transfer, and the inner PCG across
    // ranks; the result must still match the serial run.
    let n = 16;
    let size = [n, n, n];
    let cfg = RegistrationConfig { precond: PrecondKind::TwoLevelInvH0, ..fixed_cfg() };
    let run = move |p: usize| {
        let res = run_cluster(Topology::new(p, 4), move |comm| {
            let prob = syn_problem(size, comm);
            let mut solver = Claire::new(cfg);
            let (_, report) =
                solver.register_from(&prob.template, &prob.reference, None, "SYN", comm);
            (report.rel_mismatch, report.pcg_iters, report.gn_iters)
        });
        res.outputs[0]
    };
    let (m1, pcg1, gn1) = run(1);
    let (m2, pcg2, gn2) = run(2);
    assert!((m1 - m2).abs() < 1e-9, "mismatch {m1} vs {m2}");
    assert_eq!(pcg1, pcg2, "PCG iteration counts must agree");
    assert_eq!(gn1, gn2, "GN iteration counts must agree");
}
