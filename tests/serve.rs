//! End-to-end tests of the claire-serve job service: priority scheduling,
//! cooperative cancellation within one Gauss–Newton iteration, deadlines,
//! graceful shutdown, and a property test over submit/cancel/shutdown
//! interleavings (no job lost, none duplicated).
//!
//! Jobs are tiny synthetic problems (8³, nt ≤ 2, ≤ 2 GN iterations) so the
//! whole file stays fast on a single-core host.

use claire::core::{CancelToken, PrecondKind, RegistrationConfig, SolverHooks};
use claire::prelude::*;
use proptest::prelude::*;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Duration;

fn tiny_config() -> RegistrationConfig {
    RegistrationConfig {
        nt: 2,
        max_gn_iter: 2,
        max_pcg_iter: 4,
        continuation: false,
        precond: PrecondKind::InvA,
        ..Default::default()
    }
}

fn tiny_spec(label: &str) -> JobSpec {
    JobSpec::new(label, tiny_config(), JobInput::Synthetic { n: [8, 8, 8] })
}

/// Hooks whose first GN boundary appends `label` to `order` — records the
/// order in which the worker *started* jobs.
fn start_recorder(label: &'static str, order: &Arc<Mutex<Vec<&'static str>>>) -> SolverHooks {
    let order = order.clone();
    let first = AtomicBool::new(true);
    SolverHooks {
        cancel: None,
        on_gn_iter: Some(Arc::new(move |_| {
            if first.swap(false, Ordering::Relaxed) {
                order.lock().unwrap().push(label);
            }
        })),
    }
}

#[test]
fn priority_classes_drain_in_order() {
    // One worker; the first job parks inside its first GN boundary until we
    // release it, so the queue is guaranteed to hold all three priority
    // classes before the worker picks the next job.
    let svc = RegistrationService::start(
        ServiceConfig::default().workers(1).queue_capacity(8).collect_reports(false),
    );
    let (release_tx, release_rx) = mpsc::channel::<()>();
    let release_rx = Mutex::new(Some(release_rx));
    let blocker_hooks = SolverHooks {
        cancel: None,
        on_gn_iter: Some(Arc::new(move |_| {
            if let Some(rx) = release_rx.lock().unwrap().take() {
                let _ = rx.recv_timeout(Duration::from_secs(30));
            }
        })),
    };
    let blocker = svc.submit(tiny_spec("blocker").hooks(blocker_hooks)).unwrap();
    // the worker must be occupied before the contenders are queued
    while svc.status(blocker) != Some(JobStatus::Running) {
        std::thread::sleep(Duration::from_millis(1));
    }

    let order = Arc::new(Mutex::new(Vec::new()));
    // submitted worst-first so FIFO order would be wrong
    let low = svc
        .submit(tiny_spec("low").priority(Priority::Low).hooks(start_recorder("low", &order)))
        .unwrap();
    let normal = svc.submit(tiny_spec("normal").hooks(start_recorder("normal", &order))).unwrap();
    let high = svc
        .submit(tiny_spec("high").priority(Priority::High).hooks(start_recorder("high", &order)))
        .unwrap();
    assert_eq!(svc.queue_depth(), 3);

    release_tx.send(()).unwrap();
    for id in [blocker, high, normal, low] {
        let res = svc.wait(id).expect("job known");
        assert_eq!(res.status, JobStatus::Succeeded, "{:?}", res.error);
    }
    assert_eq!(*order.lock().unwrap(), ["high", "normal", "low"]);
}

#[test]
fn cancelled_job_stops_within_one_gn_iteration() {
    let svc = RegistrationService::start(ServiceConfig::default().workers(1));
    // external token through the spec's hooks: the service adopts it
    let token = CancelToken::new();
    let trip = token.clone();
    let boundaries = Arc::new(AtomicUsize::new(0));
    let seen = boundaries.clone();
    let hooks = SolverHooks {
        cancel: Some(token),
        on_gn_iter: Some(Arc::new(move |k| {
            seen.fetch_add(1, Ordering::Relaxed);
            if k == 1 {
                trip.cancel();
            }
        })),
    };
    let mut spec = tiny_spec("to-cancel").hooks(hooks);
    spec.config.max_gn_iter = 25;
    spec.config.grad_rtol = 1e-12; // keep iterating until cancelled

    let id = svc.submit(spec).unwrap();
    let res = svc.wait(id).expect("job known");
    assert_eq!(res.status, JobStatus::Cancelled, "{:?}", res.error);
    // boundary 0 ran the iteration, boundary 1 tripped and stopped: the
    // cancel took effect within one GN iteration
    assert_eq!(boundaries.load(Ordering::Relaxed), 2);
    assert!(res.error.unwrap().contains("cancelled"));
    assert!(res.report.is_none());

    // the worker pool is not poisoned: a healthy job still succeeds
    let ok = svc.submit(tiny_spec("after-cancel")).unwrap();
    assert_eq!(svc.wait(ok).unwrap().status, JobStatus::Succeeded);
}

#[test]
fn deadline_expired_job_is_terminal_and_pool_survives() {
    let svc = RegistrationService::start(ServiceConfig::default().workers(1));
    let id = svc.submit(tiny_spec("doomed").deadline(Duration::ZERO)).unwrap();
    let res = svc.wait(id).expect("job known");
    assert_eq!(res.status, JobStatus::DeadlineExpired);
    assert!(res.status.is_terminal());
    let ok = svc.submit(tiny_spec("healthy")).unwrap();
    assert_eq!(svc.wait(ok).unwrap().status, JobStatus::Succeeded);
}

#[test]
fn graceful_shutdown_drains_in_flight_and_rejects_new_work() {
    let mut svc = RegistrationService::start(
        ServiceConfig::default().workers(2).queue_capacity(8).collect_reports(false),
    );
    let ids: Vec<JobId> =
        (0..4).map(|i| svc.submit(tiny_spec(&format!("drain-{i}"))).unwrap()).collect();
    let results = svc.shutdown();
    assert_eq!(results.len(), ids.len(), "every admitted job must be drained");
    for res in &results {
        assert_eq!(res.status, JobStatus::Succeeded, "{:?}", res.error);
    }
    // new work is rejected after shutdown
    assert!(matches!(svc.submit(tiny_spec("late")), Err(SubmitError::ShuttingDown)));
    assert!(matches!(svc.try_submit(tiny_spec("late-2")), Err(SubmitError::ShuttingDown)));
}

#[test]
fn per_job_report_records_queue_wait_and_latency() {
    let svc = RegistrationService::start(ServiceConfig::default().workers(1));
    let id = svc.submit(tiny_spec("observed").priority(Priority::High)).unwrap();
    let res = svc.wait(id).expect("job known");
    assert_eq!(res.status, JobStatus::Succeeded, "{:?}", res.error);
    let run = res.run.expect("reports collected by default");
    assert_eq!(run.scheduling.job_id, id.as_u64());
    assert_eq!(run.scheduling.priority, "high");
    assert!(run.scheduling.run_secs > 0.0);
    assert!(run.scheduling.total_secs >= run.scheduling.run_secs);
    assert!(
        (run.scheduling.total_secs - res.total.as_secs_f64()).abs() < 1e-9,
        "report and result must agree on end-to-end latency"
    );
    // the JSON document carries the scheduling block
    let json = run.to_json();
    assert!(json.contains("\"scheduling\""));
    assert!(json.contains("\"queue_wait_secs\""));
}

#[test]
fn batching_preserves_per_job_cancellation_and_reports() {
    // One worker with coalescing on. A blocker (incompatible 4³ grid)
    // parks in its first GN boundary so three compatible jobs pile up; one
    // of them cancels itself at its own iteration boundary ≥ 1 — the batch
    // must retire exactly that member while the rest complete with full
    // per-job reports carrying the shared batch id.
    let svc = RegistrationService::start(ServiceConfig::default().workers(1).batching(true));
    let (release_tx, release_rx) = mpsc::channel::<()>();
    let release_rx = Mutex::new(Some(release_rx));
    let blocker_hooks = SolverHooks {
        cancel: None,
        on_gn_iter: Some(Arc::new(move |_| {
            if let Some(rx) = release_rx.lock().unwrap().take() {
                let _ = rx.recv_timeout(Duration::from_secs(30));
            }
        })),
    };
    let blocker = JobSpec::new("blocker", tiny_config(), JobInput::Synthetic { n: [4, 4, 4] })
        .hooks(blocker_hooks);
    let b = svc.submit(blocker).unwrap();

    // the self-cancelling member: trips its own token at boundary 1
    let token = CancelToken::new();
    let trip = token.clone();
    let self_cancel = SolverHooks {
        cancel: Some(token),
        on_gn_iter: Some(Arc::new(move |k| {
            if k >= 1 {
                trip.cancel();
            }
        })),
    };
    let quitter = svc.submit(tiny_spec("quitter").hooks(self_cancel)).unwrap();
    let ok1 = svc.submit(tiny_spec("ok1")).unwrap();
    let ok2 = svc.submit(tiny_spec("ok2")).unwrap();
    release_tx.send(()).unwrap();

    assert_eq!(svc.wait(b).unwrap().status, JobStatus::Succeeded);
    let quit = svc.wait(quitter).unwrap();
    assert_eq!(quit.status, JobStatus::Cancelled, "{:?}", quit.error);
    assert!(quit.error.unwrap().contains("cancelled"));

    let mut batch_ids = Vec::new();
    for id in [ok1, ok2] {
        let res = svc.wait(id).unwrap();
        assert_eq!(res.status, JobStatus::Succeeded, "{:?}", res.error);
        assert!(res.report.is_some(), "coalesced members keep their own reports");
        let run = res.run.expect("reports on");
        assert_eq!(run.scheduling.batch_size, 3, "quitter was admitted to the batch");
        assert!(run.memory.pool_checkouts > 0, "per-member memory attribution");
        batch_ids.push(run.scheduling.batch_id);
    }
    assert!(batch_ids[0] > 0);
    assert_eq!(batch_ids[0], batch_ids[1], "both survivors ran in the same batch");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random submit/cancel/shutdown interleavings: every accepted job
    /// reaches exactly one terminal state (none lost, none duplicated),
    /// ids are unique, and cancelled jobs are really terminal.
    #[test]
    fn no_job_lost_or_duplicated_across_interleavings(
        n_jobs in 1usize..5,
        workers in 1usize..3,
        cancel_mask in 0u32..16,
        graceful_bit in 0u32..2,
    ) {
        let graceful = graceful_bit == 1;
        let mut svc = RegistrationService::start(
            ServiceConfig::default()
                .workers(workers)
                .queue_capacity(n_jobs.max(1))
                .collect_reports(false),
        );
        let mut cfg = tiny_config();
        cfg.nt = 1;
        cfg.max_gn_iter = 1;
        let mut accepted = Vec::new();
        for j in 0..n_jobs {
            let spec = JobSpec::new(
                format!("prop-{j}"),
                cfg,
                JobInput::Synthetic { n: [8, 8, 8] },
            );
            let id = svc.submit(spec).unwrap();
            if cancel_mask & (1 << j) != 0 {
                svc.cancel(id); // may race the solve — both outcomes valid
            }
            accepted.push(id);
        }
        let results = if graceful { svc.shutdown() } else { svc.shutdown_now() };

        prop_assert_eq!(results.len(), accepted.len(), "a job was lost or duplicated");
        let mut ids: Vec<u64> = results.iter().map(|r| r.id.as_u64()).collect();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), accepted.len(), "duplicate job ids in results");
        for res in &results {
            prop_assert!(res.status.is_terminal(), "non-terminal result {}", res.status);
            prop_assert!(
                matches!(res.status, JobStatus::Succeeded | JobStatus::Cancelled),
                "unexpected status {} ({:?})", res.status, res.error
            );
        }
        // after shutdown the service accepts nothing
        let late = JobSpec::new("late", cfg, JobInput::Synthetic { n: [8, 8, 8] });
        prop_assert!(matches!(svc.submit(late), Err(SubmitError::ShuttingDown)));
    }
}
