//! Cross-transport equivalence: the socket transport must be bitwise
//! indistinguishable from the channel transport.
//!
//! Every collective is built on the same deterministic rank-ordered
//! point-to-point schedule, so swapping the bytes' carrier (crossbeam
//! channels vs Unix-domain sockets) must not change a single result bit.
//! The end-to-end half of the contract — a real multi-process
//! `claire-cli launch` run reproducing the threads-as-ranks trajectory
//! field-for-field — is exercised against the built binary.

use claire::ipc::run_socket_cluster;
use claire::mpi::{run_cluster, AlltoallMethod, Comm, CommCat, Topology};
use proptest::prelude::*;
use serde_json::Value;
use std::process::Command;

/// Deterministic pseudo-random f64 in [-1, 1) from (seed, stream, index).
fn val(seed: u64, stream: usize, i: usize) -> f64 {
    let h = (seed ^ 0x9E3779B97F4A7C15)
        .wrapping_mul(0xD1B54A32D192ED03)
        .wrapping_add((stream as u64).wrapping_mul(0xA24BAED4963EE407))
        .wrapping_add((i as u64).wrapping_mul(0x2545F4914F6CDD1D));
    ((h >> 17) % 2_000_000) as f64 / 1_000_000.0 - 1.0
}

/// Run every collective once with rank- and seed-dependent ragged data and
/// return all results as exact bit patterns.
fn collective_battery(comm: &mut Comm, seed: u64) -> Vec<u64> {
    let rank = comm.rank();
    let p = comm.size();
    let mut bits: Vec<u64> = Vec::new();

    let mut v: Vec<f64> = (0..8).map(|i| val(seed ^ 1, rank, i)).collect();
    comm.allreduce_sum(&mut v);
    bits.extend(v.iter().map(|x| x.to_bits()));

    bits.push(comm.allreduce_sum_scalar(val(seed ^ 2, rank, 0)).to_bits());
    bits.push(comm.allreduce_max_scalar(val(seed ^ 3, rank, 1)).to_bits());

    let mut b: Vec<f64> =
        if rank == 0 { (0..5).map(|i| val(seed ^ 4, 0, i)).collect() } else { Vec::new() };
    comm.broadcast(0, &mut b);
    bits.extend(b.iter().map(|x| x.to_bits()));

    // Ragged gather to the last rank, then scatter the parts back out.
    let root = p - 1;
    let data: Vec<f64> = (0..16 + rank * 3).map(|i| val(seed, rank, i)).collect();
    let gathered = comm.gatherv(root, &data, CommCat::FftTranspose);
    let part = comm.scatterv(root, gathered.as_deref(), CommCat::FftTranspose);
    bits.extend(part.iter().map(|x| x.to_bits()));

    // Ragged all-to-all (the FFT transpose pattern).
    let bufs: Vec<Vec<f64>> = (0..p)
        .map(|d| (0..rank + 2 * d + 1).map(|i| val(seed ^ 5, rank * p + d, i)).collect())
        .collect();
    for got in comm.alltoallv(&bufs, CommCat::FftTranspose, AlltoallMethod::Auto) {
        bits.extend(got.iter().map(|x| x.to_bits()));
    }

    comm.barrier();
    bits
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Every collective, every transport, 2–4 ranks: identical bits.
    #[test]
    fn collectives_bitwise_equal_across_transports(p in 2usize..=4, seed in 0u64..1000) {
        let topo = Topology::new(p, 4);
        let chan = run_cluster(topo, |comm| collective_battery(comm, seed));
        let sock = run_socket_cluster(topo, |comm| collective_battery(comm, seed));
        prop_assert_eq!(&chan.outputs, &sock.outputs);
        // The logical ledgers agree too: same payload bytes, same message
        // counts, same modeled time — only wire_bytes (real framing) differs.
        for (cs, ss) in chan.stats.iter().zip(&sock.stats) {
            for cat in claire::mpi::CommCat::ALL.iter().copied() {
                prop_assert_eq!(cs.cat(cat).bytes_sent, ss.cat(cat).bytes_sent);
                prop_assert_eq!(cs.cat(cat).msgs_sent, ss.cat(cat).msgs_sent);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// end-to-end: claire-cli launch (processes) vs --in-process (threads)
// ---------------------------------------------------------------------------

fn obj(v: &Value) -> &[(String, Value)] {
    match v {
        Value::Object(pairs) => pairs,
        other => panic!("expected JSON object, got {other:?}"),
    }
}

fn get<'a>(v: &'a Value, key: &str) -> &'a Value {
    obj(v)
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .unwrap_or_else(|| panic!("missing key {key}"))
}

/// The transport-independent slice of a RunReport: problem identity, the
/// full GN trajectory, and the logical communication ledgers. Wall-clock
/// times, process-local telemetry (spans, kernels, metrics, memory), and
/// the physical wire accounting are dropped.
fn canonical(run: &Value) -> Value {
    const KEEP: [&str; 9] = [
        "grid",
        "nranks",
        "nt",
        "precond",
        "backend",
        "summary",
        "comm",
        "collectives",
        "gn_trace",
    ];
    let fields = KEEP
        .iter()
        .map(|&key| {
            let v = get(run, key);
            let v = match key {
                "summary" => Value::Object(
                    obj(v).iter().filter(|(k, _)| k != "time_total").cloned().collect(),
                ),
                "comm" => Value::Array(match v {
                    Value::Array(entries) => entries
                        .iter()
                        .map(|e| {
                            Value::Object(
                                obj(e).iter().filter(|(k, _)| k != "wire_bytes").cloned().collect(),
                            )
                        })
                        .collect(),
                    other => panic!("comm should be an array, got {other:?}"),
                }),
                _ => v.clone(),
            };
            (key.to_string(), v)
        })
        .collect();
    Value::Object(fields)
}

fn run_launch(dir: &std::path::Path, name: &str, extra: &[&str]) -> Value {
    let report = dir.join(name);
    let out = Command::new(env!("CARGO_BIN_EXE_claire-cli"))
        .arg("launch")
        .args(["--ranks", "4", "--syn", "8", "--timeout", "120", "-q"])
        .args(["--report", report.to_str().unwrap()])
        .args(extra)
        .output()
        .expect("spawn claire-cli");
    assert!(
        out.status.success(),
        "claire-cli launch {extra:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let json = std::fs::read_to_string(&report).expect("report file");
    serde_json::from_str(&json).expect("report JSON")
}

/// A 4-rank multi-process solve reproduces the threads-as-ranks run
/// field-for-field: same trajectory, same mismatch bits, same ledgers.
#[test]
fn launch_report_matches_in_process_report() {
    let dir = std::env::temp_dir().join(format!("claire-ipc-eq-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let proc_run = run_launch(&dir, "proc.json", &[]);
    let thr_run = run_launch(&dir, "thr.json", &["--in-process"]);
    let _ = std::fs::remove_dir_all(&dir);

    assert_eq!(get(&proc_run, "transport"), &Value::Str("socket".into()));
    assert_eq!(get(&thr_run, "transport"), &Value::Str("channel".into()));
    // Real bytes hit the wire in process mode, none in channel mode.
    let wire = |run: &Value| -> u64 {
        match get(run, "comm") {
            Value::Array(entries) => entries
                .iter()
                .map(|e| match get(e, "wire_bytes") {
                    Value::UInt(n) => *n,
                    _ => 0,
                })
                .sum(),
            _ => 0,
        }
    };
    assert!(wire(&proc_run) > 0, "socket transport should account wire bytes");
    assert_eq!(wire(&thr_run), 0, "channel transport has no wire");

    let (a, b) = (canonical(&proc_run), canonical(&thr_run));
    assert_eq!(
        serde_json::to_string_pretty(&a).unwrap(),
        serde_json::to_string_pretty(&b).unwrap(),
        "multi-process and threads-as-ranks reports diverged"
    );
}

/// Killing one rank mid-solve yields the typed rank-failure exit code —
/// promptly, and never a hang.
#[test]
fn killed_rank_fails_typed_not_hung() {
    let start = std::time::Instant::now();
    let out = Command::new(env!("CARGO_BIN_EXE_claire-cli"))
        .arg("launch")
        .args(["--ranks", "3", "--syn", "8", "--timeout", "60", "-q"])
        .env("CLAIRE_IPC_TEST_DIE_RANK", "1")
        .output()
        .expect("spawn claire-cli");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(8), "want rank-failed exit code; stderr: {stderr}");
    assert!(stderr.contains("rank 1"), "culprit rank should be named: {stderr}");
    assert!(start.elapsed() < std::time::Duration::from_secs(60), "should fail fast");
}

// ---------------------------------------------------------------------------
// mixed precision over the wire: f32 inner-solve collectives halve traffic
// ---------------------------------------------------------------------------

/// The zero-velocity Hessian `H0 = βA + ∇m̄ ⊗ ∇m̄` at element width `T`,
/// applied through the distributed spectral operator — the inner-PCG
/// system whose collectives the mixed-precision seam demotes to f32.
struct H0<'a, T: claire::fft::FftElem> {
    spectral: &'a claire::diff::SpectralT<T>,
    grad: &'a claire::grid::VectorFieldT<T>,
    beta: f64,
}

impl<T: claire::fft::FftElem> claire::opt::PcgOperator<T> for H0<'_, T> {
    fn apply(
        &mut self,
        s: &claire::grid::VectorFieldT<T>,
        comm: &mut Comm,
    ) -> claire::grid::VectorFieldT<T> {
        let mut out = self.spectral.reg_apply(s, self.beta, comm);
        let mut w = claire::grid::ScalarFieldT::<T>::zeros(*s.layout());
        for d in 0..3 {
            w.add_scaled_product(T::ONE, &self.grad.c[d], &s.c[d]);
        }
        for d in 0..3 {
            out.c[d].add_scaled_product(T::ONE, &self.grad.c[d], &w);
        }
        out
    }

    fn prec(
        &mut self,
        r: &claire::grid::VectorFieldT<T>,
        comm: &mut Comm,
    ) -> claire::grid::VectorFieldT<T> {
        self.spectral.reg_inv(r, self.beta, comm)
    }
}

/// Fixed-iteration distributed PCG on the H0 system at width `T` over real
/// sockets. Returns this rank's FftTranspose wire bytes for the solve and
/// the local solution promoted to f64 (for cross-width comparison).
fn pcg_rank<T: claire::fft::FftElem>(comm: &mut Comm, n: usize) -> (u64, Vec<f64>) {
    use claire::grid::{Grid, Layout, VectorField, WsCat};
    let layout = Layout::distributed(Grid::cube(n), comm);
    let spectral = claire::diff::SpectralT::<T>::new(layout.grid, comm);
    let grad64 = VectorField::from_fns(
        layout,
        |x, y, _| (x - 3.0) * (-(x - 3.0) * (x - 3.0) - (y - 3.0) * (y - 3.0)).exp(),
        |_, y, z| (y - 3.0) * (-(y - 3.0) * (y - 3.0) - (z - 3.0) * (z - 3.0)).exp(),
        |x, _, z| (z - 3.0) * (-(z - 3.0) * (z - 3.0) - (x - 3.0) * (x - 3.0)).exp(),
    );
    let rhs64 = VectorField::from_fns(
        layout,
        |x, y, z| (x + 0.5 * y).sin() * z.cos(),
        |x, y, z| (y + 0.5 * z).sin() * x.cos(),
        |x, y, z| (z + 0.5 * x).sin() * y.cos(),
    );
    let grad: claire::grid::VectorFieldT<T> = grad64.converted(WsCat::Other);
    let rhs: claire::grid::VectorFieldT<T> = rhs64.converted(WsCat::Other);
    let mut ops = H0 { spectral: &spectral, grad: &grad, beta: 1e-2 };
    // tol_rel = 0 pins the schedule: both widths run exactly 8 iterations,
    // so the wire-byte ratio measures element width alone
    let cfg = claire::opt::PcgConfig { tol_rel: 0.0, max_iter: 8, trace: false };

    let before = comm.stats().cat(CommCat::FftTranspose).wire_bytes;
    let (x, res) = claire::opt::pcg(&rhs, None, &cfg, &mut ops, comm);
    assert_eq!(res.iters, 8);
    let wire = comm.stats().cat(CommCat::FftTranspose).wire_bytes - before;

    let mut out = Vec::new();
    for d in 0..3 {
        out.extend(x.c[d].data().iter().map(|&v| T::to_f64(v)));
    }
    (wire, out)
}

/// The inner solve's collectives carry f32 payloads in mixed mode: the
/// same fixed-iteration PCG moves ~half the FftTranspose wire bytes at
/// f32 as at f64 (framing overhead keeps the ratio a little above 0.5),
/// and the promoted f32 solution matches the f64 one to single-precision
/// accuracy. This is the wire half of the mixed-precision contract; the
/// solver-level same-mismatch half lives in claire-core's solver tests.
#[test]
fn f32_inner_solve_halves_transpose_wire_bytes() {
    let topo = Topology::new(2, 4);
    let r64 = run_socket_cluster(topo, |comm| pcg_rank::<f64>(comm, 16));
    let r32 = run_socket_cluster(topo, |comm| pcg_rank::<f32>(comm, 16));

    let wire64: u64 = r64.outputs.iter().map(|(w, _)| *w).sum();
    let wire32: u64 = r32.outputs.iter().map(|(w, _)| *w).sum();
    assert!(wire64 > 0, "distributed FFTs should move transpose bytes");
    let ratio = wire32 as f64 / wire64 as f64;
    assert!(
        (0.45..=0.65).contains(&ratio),
        "f32 inner solve should roughly halve transpose wire traffic, got {ratio:.3} \
         ({wire32} vs {wire64} bytes)"
    );

    let x64: Vec<f64> = r64.outputs.iter().flat_map(|(_, x)| x.iter().copied()).collect();
    let x32: Vec<f64> = r32.outputs.iter().flat_map(|(_, x)| x.iter().copied()).collect();
    assert_eq!(x64.len(), x32.len());
    let num: f64 = x64.iter().zip(&x32).map(|(a, b)| (a - b) * (a - b)).sum();
    let den: f64 = x64.iter().map(|a| a * a).sum();
    let rel = (num / den).sqrt();
    assert!(rel < 1e-4, "promoted f32 PCG solution should track f64, rel diff {rel:.3e}");
}

/// End-to-end over sockets: a mixed-precision registration converges to
/// the same mismatch as the f64 run within the documented tolerance
/// (`|Δ| ≤ 1e-3·rel + 1e-6`, the single-precision inner-solve error the
/// f64 outer iteration absorbs).
#[test]
fn mixed_registration_matches_f64_mismatch_over_sockets() {
    use claire::core::{Claire, Precision, RegistrationConfig};
    use claire::grid::{Grid, Layout, Real, ScalarField};

    let solve = move |precision: Precision| {
        run_socket_cluster(Topology::new(2, 4), move |comm| {
            let layout = Layout::distributed(Grid::cube(16), comm);
            let blob = move |cx: Real| {
                move |x: Real, y: Real, z: Real| {
                    let d2 = (x - cx).powi(2) + (y - 3.0).powi(2) + (z - 3.0).powi(2);
                    (-d2 / 1.2).exp()
                }
            };
            let m0 = ScalarField::from_fn(layout, blob(3.0));
            let m1 = ScalarField::from_fn(layout, blob(3.5));
            let cfg = RegistrationConfig {
                nt: 2,
                continuation: false,
                grid_continuation: false,
                beta_target: 1e-2,
                max_gn_iter: 6,
                precision,
                verbose: false,
                ..Default::default()
            };
            let (_, report) = Claire::new(cfg).register(&m0, &m1, comm);
            (report.rel_mismatch, report.precision.clone())
        })
    };
    let r64 = solve(Precision::F64);
    let r32 = solve(Precision::Mixed);
    let (m64, p64) = &r64.outputs[0];
    let (m32, p32) = &r32.outputs[0];
    assert_eq!(p64, "f64");
    assert_eq!(p32, "mixed");
    assert!(
        (m64 - m32).abs() <= 1e-3 * m64 + 1e-6,
        "mixed solve over sockets should reach the f64 mismatch: {m32:.6e} vs {m64:.6e}"
    );
}
