//! Validate the performance model's communication-volume formulas against
//! the byte-accurate traffic instrumentation of real (functional) runs on
//! the virtual cluster. This anchors the paper-scale tables from below:
//! the same closed forms that drive the modeled times are checked here
//! against what the distributed kernels actually ship.

use claire::fft::DistFft;
use claire::grid::{ghost, Grid, Layout, Real, ScalarField};
use claire::mpi::{run_cluster, CommCat, Topology};

#[test]
fn fft_transpose_volume_matches_closed_form() {
    // paper §3.3: per-rank transpose volume is the local spectral block
    // minus the self part: bytes = cpx · n1/p · n2 · n3c · (p-1)/p
    for p in [2usize, 4] {
        let n = 16;
        let grid = Grid::new([n, n, n]);
        let res = run_cluster(Topology::new(p, 4), move |comm| {
            let layout = Layout::distributed(grid, comm);
            let f = ScalarField::from_fn(layout, |x, y, z| (x + y).sin() + z.cos());
            let dfft = DistFft::new(grid, comm);
            let spec = dfft.forward(&f, comm);
            let fwd_bytes = comm.stats().cat(CommCat::FftTranspose).bytes_sent;
            let _ = dfft.inverse(spec, comm);
            let total_bytes = comm.stats().cat(CommCat::FftTranspose).bytes_sent;
            (fwd_bytes, total_bytes)
        });
        let cpx = 2 * std::mem::size_of::<Real>() as u64;
        let n3c = (n / 2 + 1) as u64;
        let local_block = (n as u64 / p as u64) * n as u64 * n3c * cpx;
        let expect_fwd = local_block * (p as u64 - 1) / p as u64;
        for (rank, &(fwd, total)) in res.outputs.iter().enumerate() {
            assert_eq!(fwd, expect_fwd, "p={p} rank={rank}: forward transpose volume");
            assert_eq!(total, 2 * expect_fwd, "p={p} rank={rank}: inverse doubles it");
        }
    }
}

#[test]
fn ghost_volume_matches_closed_form() {
    // paper §3.2: halo message size is O(N2·N3) per side per plane
    for (p, width) in [(2usize, 4usize), (4, 2), (4, 4)] {
        let grid = Grid::new([16, 8, 6]);
        let res = run_cluster(Topology::new(p, 4), move |comm| {
            let layout = Layout::distributed(grid, comm);
            let f = ScalarField::from_fn(layout, |x, _, _| x.sin());
            let _ = ghost::exchange(&f, width, comm);
            comm.stats().cat(CommCat::Ghost).bytes_sent
        });
        let expect = (2 * width * 8 * 6 * std::mem::size_of::<Real>()) as u64;
        for (rank, &bytes) in res.outputs.iter().enumerate() {
            assert_eq!(bytes, expect, "p={p} w={width} rank={rank}");
        }
    }
}

#[test]
fn scatter_volume_bounded_by_cfl() {
    // paper §3.1: the query scatter volume is O(umax·N2·N3) — only the
    // CFL-deep boundary layer of points leaves the rank.
    let grid = Grid::new([16, 8, 8]);
    let res = run_cluster(Topology::new(4, 4), move |comm| {
        let layout = Layout::distributed(grid, comm);
        let m0 = ScalarField::from_fn(layout, |x, y, _| (x + y).sin());
        let v = claire::grid::VectorField::from_fns(
            layout,
            |_, y, _| 0.3 * y.sin(), // max displacement 0.3·dt << h·1
            |_, _, _| 0.0,
            |_, _, _| 0.0,
        );
        let mut ip = claire::interp::Interpolator::new(claire::interp::IpOrder::Linear);
        let tr = claire::semilag::Transport::new(4, claire::interp::IpOrder::Linear);
        let traj = claire::semilag::Trajectory::compute(&v, 4, &mut ip, comm);
        let s0 = comm.stats().cat(CommCat::Scatter).bytes_sent;
        let _ = tr.solve_state(&traj, &m0, false, &mut ip, comm);
        (comm.stats().cat(CommCat::Scatter).bytes_sent - s0, traj.cfl)
    });
    for (rank, &(bytes, cfl)) in res.outputs.iter().enumerate() {
        assert!(cfl < 1.0, "test velocity should be sub-CFL");
        // bound: nt steps × ceil(cfl+1) boundary planes × plane points × 24 B
        let bound = 4 * 2 * 8 * 8 * std::mem::size_of::<[Real; 3]>() as u64;
        assert!(bytes <= bound, "rank {rank}: scatter {bytes} exceeds CFL bound {bound}");
    }
}

#[test]
fn modeled_times_scale_with_volume() {
    // double the plane size -> the modeled ghost time roughly doubles
    // (planes must be large enough that bandwidth, not latency, dominates)
    let t = |n2: usize| {
        let grid = Grid::new([8, n2, 64]);
        let res = run_cluster(Topology::new(2, 4), move |comm| {
            let layout = Layout::distributed(grid, comm);
            let f = ScalarField::from_fn(layout, |x, _, _| x.sin());
            let _ = ghost::exchange(&f, 4, comm);
            comm.stats().cat(CommCat::Ghost).modeled_secs
        });
        res.outputs.iter().cloned().fold(0.0, f64::max)
    };
    let t64 = t(64);
    let t128 = t(128);
    assert!(t128 > 1.2 * t64, "modeled ghost time should grow with N2: {t64} vs {t128}");
}
