//! Serial vs. parallel kernel equivalence.
//!
//! Every kernel in the shared-memory parallel layer must produce the same
//! answer for every thread count. Element-wise kernels never split work
//! inside one output element, and reductions always combine fixed-size
//! blocks in index order, so the results are *bitwise* identical — which
//! these tests assert (far stronger than the 1e-12 requirement).
//!
//! `claire_par::set_threads` is process-global, so everything runs under a
//! mutex to keep the harness's own test parallelism from interleaving
//! overrides.

use std::sync::Mutex;

use claire::diff::fd;
use claire::fft::{Cpx, Fft3};
use claire::grid::{Grid, Layout, Real, ScalarField, VectorField};
use claire::interp::{Interpolator, IpOrder};
use claire::mpi::Comm;
use claire::par::with_threads;
use claire::semilag::{Trajectory, Transport};
use proptest::prelude::*;

static THREAD_LOCK: Mutex<()> = Mutex::new(());

/// Run `f` at each thread count and return one result per count.
fn at_thread_counts<T>(counts: &[usize], f: impl Fn() -> T) -> Vec<T> {
    let _guard = THREAD_LOCK.lock().unwrap();
    counts.iter().map(|&nt| with_threads(nt, &f)).collect()
}

/// Assert two scalar slices are bitwise identical.
fn assert_bits_eq(a: &[Real], b: &[Real], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length mismatch");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: idx {i} differs: {x:e} vs {y:e}");
    }
}

/// A smooth test field on a grid large enough (≥ 32³ = 32768 points) that
/// the parallel path actually engages (`MIN_PAR_LEN` = 8192).
fn test_field(n: usize) -> ScalarField {
    let layout = Layout::serial(Grid::cube(n));
    ScalarField::from_fn(layout, |x, y, z| {
        (x + 0.3 * y).sin() * (2.0 * z).cos() + 0.1 * (y - z).sin()
    })
}

const COUNTS: [usize; 3] = [1, 2, 8];

#[test]
fn fd_derivatives_identical_across_thread_counts() {
    let f = test_field(32);
    for dim in 0..3 {
        let results = at_thread_counts(&COUNTS, || {
            let mut comm = Comm::solo();
            fd::deriv(&f, dim, &mut comm)
        });
        for r in &results[1..] {
            assert_bits_eq(results[0].data(), r.data(), &format!("fd deriv dim {dim}"));
        }
    }
}

#[test]
fn fd_gradient_and_divergence_identical_across_thread_counts() {
    let f = test_field(32);
    let grads = at_thread_counts(&COUNTS, || {
        let mut comm = Comm::solo();
        fd::gradient(&f, &mut comm)
    });
    for g in &grads[1..] {
        for c in 0..3 {
            assert_bits_eq(grads[0].c[c].data(), g.c[c].data(), "gradient");
        }
    }
    let v = VectorField::from_fns(
        *f.layout(),
        |_, y, _| 0.4 * y.sin(),
        |x, _, _| 0.3 * x.cos(),
        |_, _, z| 0.2 * (2.0 * z).sin(),
    );
    let divs = at_thread_counts(&COUNTS, || {
        let mut comm = Comm::solo();
        fd::divergence(&v, &mut comm)
    });
    for d in &divs[1..] {
        assert_bits_eq(divs[0].data(), d.data(), "divergence");
    }
}

#[test]
fn fft_forward_and_roundtrip_identical_across_thread_counts() {
    let f = test_field(32);
    let grid = f.layout().grid;
    let specs = at_thread_counts(&COUNTS, || {
        let plan = Fft3::new(grid);
        let mut spec = vec![Cpx::ZERO; plan.spectral_len()];
        plan.forward(f.data(), &mut spec);
        let mut back = vec![0.0 as Real; grid.len()];
        let mut spec_copy = spec.clone();
        plan.inverse(&mut spec_copy, &mut back);
        (spec, back)
    });
    for (spec, back) in &specs[1..] {
        for (i, (a, b)) in specs[0].0.iter().zip(spec).enumerate() {
            assert_eq!(a.re.to_bits(), b.re.to_bits(), "fft re bin {i}");
            assert_eq!(a.im.to_bits(), b.im.to_bits(), "fft im bin {i}");
        }
        assert_bits_eq(&specs[0].1, back, "fft roundtrip");
    }
}

#[test]
fn interpolation_identical_across_thread_counts() {
    let f = test_field(32);
    // off-grid query points derived deterministically from the index
    let queries: Vec<[Real; 3]> = (0..f.layout().local_len())
        .map(|i| {
            let t = i as Real * 0.618;
            [(t.sin().abs()) * 6.0, (t.cos().abs()) * 6.0, ((0.7 * t).sin().abs()) * 6.0]
        })
        .collect();
    for order in [IpOrder::Linear, IpOrder::Cubic] {
        let results = at_thread_counts(&COUNTS, || {
            let mut comm = Comm::solo();
            let mut ip = Interpolator::new(order);
            ip.interp(&f, &queries, &mut comm)
        });
        for r in &results[1..] {
            assert_bits_eq(&results[0], r, &format!("interp {order:?}"));
        }
    }
}

#[test]
fn field_ops_and_reductions_identical_across_thread_counts() {
    let f = test_field(32);
    let g = ScalarField::from_fn(*f.layout(), |x, y, z| (x * y).cos() + z * 0.2);
    let results = at_thread_counts(&COUNTS, || {
        let mut comm = Comm::solo();
        let mut a = f.clone();
        a.axpy(0.7, &g);
        a.scale(1.3);
        a.add_scaled_product(0.5, &f, &g);
        let dot = a.dot(&g, &mut comm);
        let sum = a.sum(&mut comm);
        let mx = a.max_abs(&mut comm);
        (a, dot, sum, mx)
    });
    for (a, dot, sum, mx) in &results[1..] {
        assert_bits_eq(results[0].0.data(), a.data(), "field ops");
        assert_eq!(results[0].1.to_bits(), dot.to_bits(), "dot");
        assert_eq!(results[0].2.to_bits(), sum.to_bits(), "sum");
        assert_eq!(results[0].3.to_bits(), mx.to_bits(), "max_abs");
    }
}

#[test]
fn semilag_transport_identical_across_thread_counts() {
    let layout = Layout::serial(Grid::cube(32));
    let v = VectorField::from_fns(
        layout,
        |_, y, _| 0.3 * y.sin(),
        |x, _, _| 0.2 * x.cos(),
        |_, _, z| 0.1 * (2.0 * z).sin(),
    );
    let m0 = ScalarField::from_fn(layout, |x, y, z| x.sin() + (y * 2.0).cos() + z * 0.1);
    let results = at_thread_counts(&COUNTS, || {
        let mut comm = Comm::solo();
        let mut ip = Interpolator::new(IpOrder::Cubic);
        let tr = Transport::new(4, IpOrder::Cubic);
        let traj = Trajectory::compute(&v, tr.nt, &mut ip, &mut comm);
        let state = tr.solve_state(&traj, &m0, true, &mut ip, &mut comm);
        let lam = tr.solve_adjoint(&traj, state.final_state(), &mut ip, &mut comm);
        (state.final_state().clone(), lam[0].clone())
    });
    for (m1, lam0) in &results[1..] {
        assert_bits_eq(results[0].0.data(), m1.data(), "state");
        assert_bits_eq(results[0].1.data(), lam0.data(), "adjoint");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// FD8 hits its design order of accuracy no matter how many threads run
    /// the stencil: the error for sin(k·x) on 32³ vs 64³ must shrink by
    /// ~2⁸ (measured order > 7) for every thread count.
    #[test]
    fn fd8_order_of_accuracy_independent_of_threads(
        tsel in 0usize..3,
        k in 1usize..4,
        dim in 0usize..3,
    ) {
        let nthreads = [1usize, 2, 8][tsel];
        let _guard = THREAD_LOCK.lock().unwrap();
        let err = |n: usize| -> f64 {
            let layout = Layout::serial(Grid::cube(n));
            let kr = k as Real;
            let f = ScalarField::from_fn(layout, move |x, y, z| {
                (kr * [x, y, z][dim]).sin()
            });
            let mut comm = Comm::solo();
            let d = with_threads(nthreads, || fd::deriv(&f, dim, &mut comm));
            let exact = ScalarField::from_fn(layout, move |x, y, z| {
                kr * (kr * [x, y, z][dim]).cos()
            });
            d.data()
                .iter()
                .zip(exact.data())
                .map(|(&a, &b)| (a - b).abs())
                .fold(0.0, f64::max)
        };
        let (e32, e64) = (err(32), err(64));
        // guard against hitting machine precision (k small keeps e32 ≫ eps)
        prop_assume!(e32 > 1e-12);
        let order = (e32 / e64).log2();
        prop_assert!(
            order > 7.0,
            "FD8 order {order:.2} with {nthreads} threads (e32={e32:e}, e64={e64:e})"
        );
    }
}
