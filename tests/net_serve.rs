//! End-to-end tests of the networked claire-serve stack: a TCP-submitted
//! job returns the same registration (bitwise on the deterministic report
//! fields) as an in-process run of the identical spec, repeated identical
//! submissions are served from the content-hash cache without running the
//! solver, tenant quotas surface as typed wire errors, streamed status
//! follows the documented `Queued → Running → GnIter* → Terminal` order,
//! and the sharding router co-locates same-fingerprint jobs and re-routes
//! work off a dead worker.
//!
//! Jobs are tiny synthetic problems (8³, nt = 2, ≤ 2 GN iterations) so the
//! whole file stays fast on a single-core host.

use claire::core::{PrecondKind, RegistrationConfig, RegistrationReport};
use claire::serve::{
    Client, ErrorCode, JobInput, JobSpec, JobStatus, NetServer, NetServerConfig, QuotaConfig,
    RegistrationService, Router, ServiceConfig, StreamEvent, WireError, WireJobSpec,
};

fn tiny_config() -> RegistrationConfig {
    RegistrationConfig {
        nt: 2,
        max_gn_iter: 2,
        max_pcg_iter: 4,
        continuation: false,
        precond: PrecondKind::InvA,
        verbose: false,
        ..Default::default()
    }
}

fn tiny_spec(label: &str) -> JobSpec {
    JobSpec::new(label, tiny_config(), JobInput::Synthetic { n: [8, 8, 8] })
}

fn boot(cfg: ServiceConfig) -> (NetServer, Client) {
    let server = NetServer::bind("127.0.0.1:0", NetServerConfig::default().service(cfg))
        .expect("bind loopback server");
    let client = Client::connect(server.local_addr()).expect("connect");
    (server, client)
}

/// The registration arithmetic is deterministic (fixed-block reductions),
/// so everything except wall-clock timings must match bitwise between two
/// solves of the same spec — in particular across the wire.
fn assert_reports_bitwise_equal(a: &RegistrationReport, b: &RegistrationReport) {
    assert_eq!(a.grid, b.grid);
    assert_eq!(a.nt, b.nt);
    assert_eq!((a.gn_iters, a.pcg_iters), (b.gn_iters, b.pcg_iters));
    assert_eq!((a.n_inva, a.n_invh0, a.inner_cg_total), (b.n_inva, b.n_invh0, b.inner_cg_total));
    assert_eq!(a.rel_mismatch.to_bits(), b.rel_mismatch.to_bits(), "rel_mismatch drifted");
    assert_eq!(a.grad_rel.to_bits(), b.grad_rel.to_bits(), "grad_rel drifted");
    assert_eq!(a.jac_det_min.to_bits(), b.jac_det_min.to_bits(), "jac_det_min drifted");
    assert_eq!(a.jac_det_max.to_bits(), b.jac_det_max.to_bits(), "jac_det_max drifted");
    assert_eq!(a.memory_bytes_per_rank, b.memory_bytes_per_rank);
}

#[test]
fn tcp_submission_matches_in_process_bitwise() {
    // in-process reference
    let mut svc = RegistrationService::start(ServiceConfig::default().workers(1));
    let id = svc.submit(tiny_spec("local")).expect("local admission");
    let local = svc.wait(id).expect("local job known");
    assert_eq!(local.status, JobStatus::Succeeded, "{:?}", local.error);
    svc.shutdown();

    // the same spec over TCP
    let (mut server, mut client) = boot(ServiceConfig::default().workers(1));
    let wire = WireJobSpec::from_spec(&tiny_spec("remote"));
    let adm = client.submit(&wire).expect("remote admission");
    assert!(!adm.cached);
    let remote = client.wait(adm.id).expect("remote result");
    assert_eq!(remote.status, JobStatus::Succeeded, "{:?}", remote.error);
    server.shutdown();

    let a = local.report.expect("local report");
    let b = remote.report.expect("remote report");
    assert_reports_bitwise_equal(&a, &b);
}

#[test]
fn repeated_submission_is_served_from_the_cache_without_solving() {
    let (mut server, mut client) = boot(ServiceConfig::default().workers(1).result_cache(8));
    let wire = WireJobSpec::from_spec(&tiny_spec("first"));

    let first = client.submit(&wire).expect("first admission");
    assert!(!first.cached);
    let solved = client.wait(first.id).expect("first result");
    assert_eq!(solved.status, JobStatus::Succeeded, "{:?}", solved.error);
    assert_eq!(server.service().solver_invocations(), 1);

    // identical content, different label/tenant → cache hit, no solve
    let mut replay = WireJobSpec::from_spec(&tiny_spec("replay"));
    replay.tenant = "someone-else".into();
    let second = client.submit(&replay).expect("second admission");
    assert!(second.cached, "identical content must be served from the cache");
    let cached = client.wait(second.id).expect("cached result");
    assert_eq!(server.service().solver_invocations(), 1, "cache hit must not run the solver");
    assert_eq!(cached.status, JobStatus::Succeeded);
    assert!(cached.cached);
    assert_eq!(cached.label, "replay", "identity fields follow the new submission");

    // the cached registration is a verbatim clone — bitwise, not re-solved
    let a = solved.report.expect("solved report");
    let b = cached.report.expect("cached report");
    assert_eq!(a, b, "cached report must be identical to the stored one");
    assert_reports_bitwise_equal(&a, &b);

    let stats = server.service().cache_stats();
    assert_eq!((stats.hits, stats.misses), (1, 1));
    server.shutdown();
}

#[test]
fn quota_refusals_surface_as_typed_wire_errors() {
    let (mut server, mut client) = boot(
        ServiceConfig::default().workers(1).queue_capacity(16).quota(QuotaConfig::new(2.0, 0.001)),
    );
    let mut spec = WireJobSpec::from_spec(&tiny_spec("quota"));
    spec.tenant = "greedy".into();
    let a = client.submit(&spec).expect("first within burst");
    let b = client.submit(&spec).expect("second within burst");
    match client.submit(&spec) {
        Err(WireError::Remote { code: ErrorCode::QuotaExceeded, message }) => {
            assert!(message.contains("greedy"), "refusal names the tenant: {message}");
        }
        other => panic!("expected a QuotaExceeded refusal, got {other:?}"),
    }
    // the client connection survives the refusal, and other tenants pass
    let mut polite = WireJobSpec::from_spec(&tiny_spec("polite"));
    polite.tenant = "polite".into();
    let c = client.submit(&polite).expect("other tenant admitted");
    for id in [a.id, b.id, c.id] {
        assert_eq!(client.wait(id).expect("result").status, JobStatus::Succeeded);
    }
    server.shutdown();
}

#[test]
fn streamed_status_follows_the_lifecycle_order() {
    let (mut server, mut client) = boot(ServiceConfig::default().workers(1));
    let wire = WireJobSpec::from_spec(&tiny_spec("streamed"));
    let adm = client.submit(&wire).expect("admission");
    let mut events = Vec::new();
    let terminal = client.stream(adm.id, |e| events.push(e)).expect("stream to completion");
    assert_eq!(terminal, JobStatus::Succeeded);

    assert_eq!(events.first(), Some(&StreamEvent::Queued), "stream opens with Queued");
    match events.last() {
        Some(StreamEvent::Terminal { status: JobStatus::Succeeded }) => {}
        other => panic!("stream must end with Terminal(Succeeded), got {other:?}"),
    }
    let running_at = events
        .iter()
        .position(|e| matches!(e, StreamEvent::Running))
        .expect("a Running event is emitted");
    let iters: Vec<usize> = events
        .iter()
        .enumerate()
        .filter_map(|(i, e)| match e {
            StreamEvent::GnIter { iter } => {
                assert!(i > running_at, "GnIter events follow Running");
                Some(*iter)
            }
            _ => None,
        })
        .collect();
    assert!(!iters.is_empty(), "a 2-iteration job must stream GN progress");
    assert!(iters.windows(2).all(|w| w[0] < w[1]), "GN iterations are monotone: {iters:?}");

    // the job result is still claimable after streaming
    let res = client.wait(adm.id).expect("result after stream");
    assert_eq!(res.status, JobStatus::Succeeded);
    server.shutdown();
}

#[test]
fn cancel_over_the_wire_reaches_a_queued_job() {
    // zero workers is not possible; use one worker busy with a first job so
    // the second stays queued long enough to cancel deterministically — the
    // first job is itself tiny, so worst case the cancel just races and we
    // only assert the protocol round trip.
    let (mut server, mut client) = boot(ServiceConfig::default().workers(1).queue_capacity(8));
    let first = client.submit(&WireJobSpec::from_spec(&tiny_spec("busy"))).expect("first");
    let second = client
        .submit(&WireJobSpec::from_spec(&{
            let mut s = tiny_spec("doomed");
            s.config.max_gn_iter = 1; // different content: no coalescing surprises
            s
        }))
        .expect("second");
    let delivered = client.cancel(second.id).expect("cancel round trip");
    let res = client.wait(second.id).expect("terminal result");
    if delivered && res.status == JobStatus::Cancelled {
        assert!(res.error.is_some(), "cancelled results carry a reason");
    } else {
        // the race went the other way: the job ran to completion
        assert_eq!(res.status, JobStatus::Succeeded);
    }
    assert_eq!(client.wait(first.id).expect("first result").status, JobStatus::Succeeded);
    server.shutdown();
}

// ---------------------------------------------------------------------------
// router
// ---------------------------------------------------------------------------

#[test]
fn router_colocates_same_fingerprint_jobs_and_round_trips() {
    let mut w1 = NetServer::bind("127.0.0.1:0", NetServerConfig::default()).expect("worker 1");
    let mut w2 = NetServer::bind("127.0.0.1:0", NetServerConfig::default()).expect("worker 2");
    let addrs = [w1.local_addr().to_string(), w2.local_addr().to_string()];
    let router = Router::new(&addrs).expect("router");

    // same solver fingerprint (grid + config) → same shard, regardless of
    // identity fields; a config change may move the job
    let base = WireJobSpec::from_spec(&tiny_spec("a"));
    let mut relabeled = base.clone();
    relabeled.label = "b".into();
    relabeled.tenant = "tenant-b".into();
    assert_eq!(
        router.shard_of(&base),
        router.shard_of(&relabeled),
        "identity fields must not split a coalescable pair across workers"
    );

    let adm1 = router.submit(&base).expect("first routed admission");
    let adm2 = router.submit(&relabeled).expect("second routed admission");
    assert_ne!(adm1.id, adm2.id);
    for (adm, label) in [(adm1, "a"), (adm2, "b")] {
        let res = router.wait(adm.id).expect("routed result");
        assert_eq!(res.status, JobStatus::Succeeded, "{:?}", res.error);
        assert_eq!(res.label, label);
        assert_eq!(res.id, adm.id, "results are rewritten into the router's id space");
    }
    assert_eq!(router.rerouted(), 0);
    w1.shutdown();
    w2.shutdown();
}

#[test]
fn router_reroutes_jobs_off_a_dead_worker() {
    let mut w1 = NetServer::bind("127.0.0.1:0", NetServerConfig::default()).expect("worker 1");
    let mut w2 = NetServer::bind("127.0.0.1:0", NetServerConfig::default()).expect("worker 2");
    let addrs = [w1.local_addr().to_string(), w2.local_addr().to_string()];
    let router = Router::new(&addrs).expect("router");

    let spec = WireJobSpec::from_spec(&tiny_spec("survivor"));
    let shard = router.shard_of(&spec).expect("an alive shard");
    let adm = router.submit(&spec).expect("routed admission");

    // kill the worker the job landed on before claiming the result
    if shard == 0 {
        w1.shutdown();
    } else {
        w2.shutdown();
    }

    let res = router.wait(adm.id).expect("rerouted result");
    assert_eq!(res.status, JobStatus::Succeeded, "{:?}", res.error);
    assert_eq!(res.id, adm.id);
    assert_eq!(router.rerouted(), 1, "the dead worker's job must be re-submitted exactly once");
    assert_eq!(router.alive_backends(), 1);

    // new work keeps flowing to the surviving worker
    let adm2 = router.submit(&spec).expect("post-failure admission");
    assert_eq!(router.wait(adm2.id).expect("result").status, JobStatus::Succeeded);

    if shard == 0 {
        w2.shutdown();
    } else {
        w1.shutdown();
    }
}
