//! Tier-1 allocation-regression gate: a steady-state Gauss–Newton
//! iteration must perform **zero** heap allocations.
//!
//! The solver's hot path draws every work buffer from the claire-grid
//! workspace pools and every FFT plan from the claire-fft plan cache, so
//! once the pools are warm (after the first iteration or two) an iteration
//! is pure checkout/checkin traffic. This test installs a counting global
//! allocator, runs a warm-up solve to fill pools and plan caches, then
//! samples the allocation counter at Gauss–Newton iteration boundaries of
//! a second solve and asserts the late iterations allocate nothing.
//!
//! Pinned to 1 thread: claire-par's serial fallback runs kernels inline on
//! the calling thread (no spawns), which both makes the run deterministic
//! and keeps scoped-thread bookkeeping out of the counter.
//!
//! The whole measurement runs once per SIMD backend (scalar, portable,
//! and auto) — the vectorized kernels, including the fused PCG field-op
//! chains, must be as allocation-free as the loops they replaced.

use std::sync::{Arc, Mutex};

use claire::core::BatchSolver;
use claire::prelude::*;
use claire_par::alloc_counter::{allocation_count, CountingAlloc};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

fn blob_pair(layout: Layout, shift: Real) -> (ScalarField, ScalarField) {
    let blob = move |cx: Real| {
        move |x: Real, y: Real, z: Real| {
            let d2 = (x - cx).powi(2) + (y - 3.0).powi(2) + (z - 3.0).powi(2);
            (-d2 / 1.2).exp()
        }
    };
    (ScalarField::from_fn(layout, blob(3.0)), ScalarField::from_fn(layout, blob(3.0 + shift)))
}

fn config() -> RegistrationConfig {
    RegistrationConfig {
        nt: 2,
        precond: PrecondKind::InvA,
        continuation: false,
        grid_continuation: false,
        beta_target: 1e-2,
        max_gn_iter: 8,
        max_pcg_iter: 5,
        grad_rtol: 1e-14, // never converge early: we want full iterations
        verbose: false,
        ..Default::default()
    }
}

#[test]
fn steady_state_gn_iteration_is_allocation_free() {
    claire::par::set_threads(1);
    claire::obs::set_enabled(false);
    let mut comm = Comm::solo();
    let layout = Layout::serial(Grid::cube(16));
    let (m0, m1) = blob_pair(layout, 0.5);
    let cfg = config();

    for choice in
        [claire_simd::Choice::Scalar, claire_simd::Choice::Portable, claire_simd::Choice::Auto]
    {
        claire_simd::force_backend(Some(choice));

        // Warm-up solve: fills the workspace pools and the FFT plan cache.
        let _ = Claire::new(cfg).register(&m0, &m1, &mut comm);

        // Measured solve: sample the global allocation counter at every GN
        // iteration boundary. The sample vector is pre-allocated so our own
        // bookkeeping cannot disturb the counter.
        let samples: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::with_capacity(64)));
        let sink = samples.clone();
        let hooks = claire::core::SolverHooks {
            cancel: None,
            on_gn_iter: Some(Arc::new(move |_| {
                sink.lock().unwrap().push(allocation_count());
            })),
        };
        let _ = Claire::with_hooks(cfg, hooks).register(&m0, &m1, &mut comm);

        let s = samples.lock().unwrap();
        assert!(
            s.len() >= 4,
            "need several GN iterations to observe a steady state, got {} boundaries",
            s.len()
        );
        // The last boundary fires after the final full iteration; the deltas
        // between the last three boundaries cover the two last complete
        // iterations — by then every pool is warm.
        let deltas: Vec<u64> = s.windows(2).map(|w| w[1] - w[0]).collect();
        let tail = &deltas[deltas.len() - 2..];
        assert_eq!(
            tail,
            &[0, 0],
            "steady-state GN iterations must not allocate under {choice:?}; \
             per-iteration allocations: {deltas:?}"
        );
    }
    claire_simd::force_backend(None);
}

/// The mixed-precision seam must not cost the zero-alloc property: the f32
/// inner PCG draws its demoted fields from the f32 workspace pool and its
/// promote/demote scratch from the f64 pool, so once both pools are warm a
/// mixed GN iteration is checkout/checkin traffic like the f64 one.
#[test]
fn steady_state_mixed_gn_iteration_is_allocation_free() {
    claire::par::set_threads(1);
    claire::obs::set_enabled(false);
    let mut comm = Comm::solo();
    let layout = Layout::serial(Grid::cube(16));
    let (m0, m1) = blob_pair(layout, 0.5);
    let cfg = RegistrationConfig { precision: claire::core::Precision::Mixed, ..config() };

    for choice in
        [claire_simd::Choice::Scalar, claire_simd::Choice::Portable, claire_simd::Choice::Auto]
    {
        claire_simd::force_backend(Some(choice));

        let _ = Claire::new(cfg).register(&m0, &m1, &mut comm);

        let samples: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::with_capacity(64)));
        let sink = samples.clone();
        let hooks = claire::core::SolverHooks {
            cancel: None,
            on_gn_iter: Some(Arc::new(move |_| {
                sink.lock().unwrap().push(allocation_count());
            })),
        };
        let (_, report) = Claire::with_hooks(cfg, hooks).register(&m0, &m1, &mut comm);
        assert_eq!(report.precision, "mixed");

        let s = samples.lock().unwrap();
        assert!(
            s.len() >= 4,
            "need several GN iterations to observe a steady state, got {} boundaries",
            s.len()
        );
        let deltas: Vec<u64> = s.windows(2).map(|w| w[1] - w[0]).collect();
        let tail = &deltas[deltas.len() - 2..];
        assert_eq!(
            tail,
            &[0, 0],
            "steady-state mixed-precision GN iterations must not allocate under {choice:?}; \
             per-iteration allocations: {deltas:?}"
        );
    }
    claire_simd::force_backend(None);
}

/// The batched path must be as allocation-clean as the sequential one: once
/// every member of a K-pair batch is past its first interleaved round (all
/// pools and plan caches warm, every `GnState` history at capacity), a full
/// interleaved GN round allocates nothing.
///
/// The observer hooks onto pair 0 only — its boundaries fire once per
/// round while all K members are active, so consecutive samples bracket
/// complete rounds (K steps each).
#[test]
fn steady_state_batch_round_is_allocation_free() {
    claire::par::set_threads(1);
    claire::obs::set_enabled(false);
    let layout = Layout::serial(Grid::cube(16));
    let cfg = config();
    let pairs = |hooks: Option<claire::core::SolverHooks>| -> Vec<claire::core::BatchPair> {
        [0.5 as Real, 0.45, 0.4]
            .iter()
            .enumerate()
            .map(|(i, &shift)| {
                let (m0, m1) = blob_pair(layout, shift);
                let p = claire::core::BatchPair::new(format!("p{i}"), m0, m1);
                match (i, &hooks) {
                    (0, Some(h)) => p.with_hooks(h.clone()),
                    _ => p,
                }
            })
            .collect()
    };

    for choice in
        [claire_simd::Choice::Scalar, claire_simd::Choice::Portable, claire_simd::Choice::Auto]
    {
        claire_simd::force_backend(Some(choice));

        // Warm-up batch: fills the pools and the plan cache.
        let _ = BatchSolver::new(cfg).solve(pairs(None)).unwrap();

        let samples: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::with_capacity(64)));
        let sink = samples.clone();
        let hooks = claire::core::SolverHooks {
            cancel: None,
            on_gn_iter: Some(Arc::new(move |_| {
                sink.lock().unwrap().push(allocation_count());
            })),
        };
        let outcome = BatchSolver::new(cfg).solve(pairs(Some(hooks))).unwrap();
        assert!(outcome.items.iter().all(|i| i.outcome.is_ok()));

        let s = samples.lock().unwrap();
        assert!(s.len() >= 4, "need several rounds for a steady state, got {}", s.len());
        let deltas: Vec<u64> = s.windows(2).map(|w| w[1] - w[0]).collect();
        let tail = &deltas[deltas.len() - 2..];
        assert_eq!(
            tail,
            &[0, 0],
            "steady-state interleaved GN rounds must not allocate under {choice:?}; \
             per-round allocations: {deltas:?}"
        );
    }
    claire_simd::force_backend(None);
}
