//! End-to-end imaging pipeline: generate → write NIfTI → read → register.

use claire::core::{Claire, PrecondKind, RegistrationConfig};
use claire::data::{brain, nifti};
use claire::grid::{Grid, Layout};
use claire::mpi::Comm;

fn tmp(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("claire_pipeline_{}_{name}", std::process::id()));
    p
}

#[test]
fn register_images_loaded_from_disk() {
    let mut comm = Comm::solo();
    let layout = Layout::serial(Grid::cube(12));
    let m0 = brain::subject("na02", layout, &mut comm);
    let m1 = brain::subject("na01", layout, &mut comm);

    // write both volumes, read them back
    let p0 = tmp("m0.nii");
    let p1 = tmp("m1.nii");
    nifti::write(&p0, &m0).unwrap();
    nifti::write(&p1, &m1).unwrap();
    let r0 = nifti::read(&p0).unwrap();
    let r1 = nifti::read(&p1).unwrap();
    std::fs::remove_file(&p0).ok();
    std::fs::remove_file(&p1).ok();

    assert_eq!(r0.layout().grid.n, [12, 12, 12]);
    // f32 storage quantizes f64 fields slightly
    let max_err = m0.data().iter().zip(r0.data()).map(|(&a, &b)| (a - b).abs()).fold(0.0, f64::max);
    assert!(max_err < 1e-6, "NIfTI roundtrip error {max_err}");

    // register the loaded images
    let cfg = RegistrationConfig {
        nt: 4,
        precond: PrecondKind::InvA,
        beta_target: 1e-2,
        max_gn_iter: 6,
        ..Default::default()
    };
    let mut solver = Claire::new(cfg);
    let (_, report) = solver.register_from(&r0, &r1, None, "disk", &mut comm);
    assert!(report.rel_mismatch < 0.9, "mismatch {}", report.rel_mismatch);
}
