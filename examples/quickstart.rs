//! Quickstart: register the paper's analytic SYN problem on a small grid.
//!
//! ```bash
//! cargo run --release --example quickstart -- [n] [--report PATH]
//! ```
//!
//! Builds the SYN template/reference pair (§4 of the paper), runs the full
//! β-continuation Gauss–Newton–Krylov solver with the 2LInvH0
//! preconditioner, and prints a Table 6-style report plus diffeomorphism
//! diagnostics. With `--report PATH` the run is traced end to end and the
//! unified `RunReport` JSON (span tree, kernel phases, per-collective
//! traffic) is written to PATH.
//!
//! The whole program needs exactly one `use`: the prelude.

use claire::prelude::*;

fn main() {
    let mut n = 24usize;
    let mut report_path: Option<std::path::PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--report" => report_path = args.next().map(std::path::PathBuf::from),
            other => {
                n = other.parse().unwrap_or_else(|_| {
                    eprintln!(
                        "unrecognized argument `{other}`; usage: quickstart [n] [--report PATH]"
                    );
                    std::process::exit(2)
                })
            }
        }
    }

    let mut comm = Comm::solo();
    println!("building SYN problem at {n}^3 ...");
    let prob = syn_problem([n, n, n], &mut comm);

    let cfg = RegistrationConfig::builder()
        .nt(4)
        .beta(1e-3)
        .verbose(true)
        .build()
        .expect("quickstart configuration is valid");
    println!(
        "registering with {} (β continuation {:?} -> {:.0e}) ...",
        cfg.precond.label(),
        cfg.beta_init,
        cfg.beta_target
    );
    if report_path.is_some() {
        begin_observing();
    }
    let mut solver = Claire::new(cfg);
    let t0 = std::time::Instant::now();
    let (v, report) = solver.register_from(&prob.template, &prob.reference, None, "SYN", &mut comm);

    println!("\n{}", RegistrationReport::header());
    println!("{}", report.row());
    println!("\nsummary:");
    println!("  wall time                {:.2} s", t0.elapsed().as_secs_f64());
    println!("  relative mismatch        {:.3e}  (1.0 = no registration)", report.rel_mismatch);
    println!("  Gauss–Newton iterations  {}", report.gn_iters);
    println!("  PCG iterations           {}", report.pcg_iters);
    println!(
        "  det(∇y) range            [{:.3}, {:.3}]  (> 0 ⇒ diffeomorphic)",
        report.jac_det_min, report.jac_det_max
    );
    let vnorm = {
        let mut vv = v;
        let norm = vv.norm_l2(&mut comm);
        vv.fill(0.0);
        norm
    };
    println!("  |v|_L2                   {vnorm:.3e}");

    if let Some(path) = &report_path {
        let run = collect_run_report("SYN", &report, &comm);
        print!("\n{}", run.span_summary());
        std::fs::write(path, run.to_json()).expect("write run report");
        println!("wrote run report to {}", path.display());
    }

    assert!(report.rel_mismatch < 0.5, "registration should reduce the mismatch");
    println!("\nok: mismatch reduced by {:.1}x", 1.0 / report.rel_mismatch);
}
