//! Quickstart: register the paper's analytic SYN problem on a small grid.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```
//!
//! Builds the SYN template/reference pair (§4 of the paper), runs the full
//! β-continuation Gauss–Newton–Krylov solver with the 2LInvH0
//! preconditioner, and prints a Table 6-style report plus diffeomorphism
//! diagnostics.

use claire::core::{Claire, RegistrationConfig, RegistrationReport};
use claire::data::syn::syn_problem;
use claire::mpi::Comm;

fn main() {
    let n = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(24usize);

    let mut comm = Comm::solo();
    println!("building SYN problem at {n}^3 ...");
    let prob = syn_problem([n, n, n], &mut comm);

    let cfg = RegistrationConfig { nt: 4, beta_target: 1e-3, verbose: true, ..Default::default() };
    println!(
        "registering with {} (β continuation {:?} -> {:.0e}) ...",
        cfg.precond.label(),
        cfg.beta_init,
        cfg.beta_target
    );
    let mut solver = Claire::new(cfg);
    let t0 = std::time::Instant::now();
    let (v, report) = solver.register_from(&prob.template, &prob.reference, None, "SYN", &mut comm);

    println!("\n{}", RegistrationReport::header());
    println!("{}", report.row());
    println!("\nsummary:");
    println!("  wall time                {:.2} s", t0.elapsed().as_secs_f64());
    println!("  relative mismatch        {:.3e}  (1.0 = no registration)", report.rel_mismatch);
    println!("  Gauss–Newton iterations  {}", report.gn_iters);
    println!("  PCG iterations           {}", report.pcg_iters);
    println!(
        "  det(∇y) range            [{:.3}, {:.3}]  (> 0 ⇒ diffeomorphic)",
        report.jac_det_min, report.jac_det_max
    );
    let vnorm = {
        let mut vv = v;
        let norm = vv.norm_l2(&mut comm);
        vv.fill(0.0);
        norm
    };
    println!("  |v|_L2                   {vnorm:.3e}");
    assert!(report.rel_mismatch < 0.5, "registration should reduce the mismatch");
    println!("\nok: mismatch reduced by {:.1}x", 1.0 / report.rel_mismatch);
}
