//! Multi-subject brain registration (the paper's Fig. 1 workflow).
//!
//! ```bash
//! cargo run --release --example brain_registration -- [n] [template] [reference]
//! ```
//!
//! Registers a NIREP-like phantom subject (default `na10`) to the atlas
//! subject (`na01`), compares all three Hessian preconditioners, and
//! writes the template, reference, deformed template, and residuals as
//! NIfTI-1 volumes to `out/` — the full clinical-style pipeline.

use claire::data::{brain, nifti};
use claire::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(24);
    let template_name = args.next().unwrap_or_else(|| "na10".to_string());
    let reference_name = args.next().unwrap_or_else(|| "na01".to_string());

    let mut comm = Comm::solo();
    let layout = Layout::serial(Grid::cube(n));
    println!("generating phantoms {template_name} (template) and {reference_name} (reference) at {n}^3 ...");
    let m0 = brain::subject(&template_name, layout, &mut comm);
    let m1 = brain::subject(&reference_name, layout, &mut comm);

    println!("\n{}", RegistrationReport::header());
    let mut best: Option<(RegistrationReport, VectorField)> = None;
    for pc in [PrecondKind::InvA, PrecondKind::InvH0, PrecondKind::TwoLevelInvH0] {
        let cfg = RegistrationConfig::builder()
            .nt(4)
            .precond(pc)
            .beta(5e-4)
            .max_gn_iter(10)
            .build()
            .expect("valid configuration");
        let mut solver = Claire::new(cfg);
        let (v, report) = solver.register_from(&m0, &m1, None, &template_name, &mut comm);
        println!("{}", report.row());
        if best.as_ref().map(|(b, _)| report.rel_mismatch < b.rel_mismatch).unwrap_or(true) {
            best = Some((report, v));
        }
    }
    let (report, v) = best.expect("at least one run");
    println!(
        "\nbest: {} — mismatch {:.3e}, det(∇y) ∈ [{:.3}, {:.3}]",
        report.pc, report.rel_mismatch, report.jac_det_min, report.jac_det_max
    );

    // write the imaging products
    let out = std::path::Path::new("out");
    std::fs::create_dir_all(out).expect("create out/");
    let cfg = RegistrationConfig::builder().nt(4).build().expect("valid configuration");
    let mut problem = RegProblem::new(m0.clone(), m1.clone(), cfg, &mut comm)
        .expect("matching layouts by construction");
    let deformed = problem.deformed_template(&v, &mut comm);
    let residual_before = diff_image(&m0, &m1);
    let residual_after = diff_image(&deformed, &m1);
    for (name, img) in [
        ("template.nii", &m0),
        ("reference.nii", &m1),
        ("deformed_template.nii", &deformed),
        ("residual_before.nii", &residual_before),
        ("residual_after.nii", &residual_after),
    ] {
        nifti::write(&out.join(name), img).expect("write NIfTI");
    }
    println!("wrote out/template.nii, reference.nii, deformed_template.nii, residual_{{before,after}}.nii");
}

fn diff_image(a: &ScalarField, b: &ScalarField) -> ScalarField {
    let mut d = a.clone();
    d.axpy(-1.0, b);
    d.map_inplace(|x| x.abs());
    d
}
