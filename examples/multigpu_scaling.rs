//! Multi-GPU registration on the virtual cluster.
//!
//! ```bash
//! cargo run --release --example multigpu_scaling -- [n] [--proc]
//! ```
//!
//! Runs the same fixed-work SYN registration (5 Gauss–Newton × 10 PCG
//! iterations, the paper's Table 7 protocol) on 1, 2, and 4 virtual GPUs,
//! and reports: wall time on this host, modeled V100-cluster time, the
//! modeled communication fraction, and the per-category traffic ledger —
//! demonstrating that the whole solver (FFTs, ghost exchanges, scattered
//! interpolation, reductions) runs distributed.
//!
//! Pass `--proc` to route the ranks over the Unix-domain-socket transport
//! (the `claire-cli launch` wire path) instead of in-process channels; the
//! mismatch column is bitwise-identical either way, and the MB columns then
//! report real framed bytes on the wire.

use claire::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let proc_mode = args.iter().any(|a| a == "--proc");
    let n: usize = args.iter().find_map(|a| a.parse().ok()).unwrap_or(24);
    let size = [n, n, n];

    if proc_mode {
        println!("transport: unix-domain sockets (launch wire path)");
    }
    println!(
        "{:>5} | {:>9} {:>12} {:>7} | {:>10} {:>10} {:>10} {:>10}",
        "GPUs", "wall (s)", "modeled (s)", "%comm", "ghost MB", "scatter MB", "fft MB", "reduce MB"
    );
    for p in [1usize, 2, 4] {
        let solve = move |comm: &mut Comm| {
            let prob = syn_problem(size, comm);
            let cfg = RegistrationConfig::builder()
                .nt(4)
                .ip_order(IpOrder::Linear)
                .precond(PrecondKind::InvA)
                .continuation(false)
                .beta(1e-3)
                .fixed_pcg(Some(10))
                .max_gn_iter(5)
                .grad_rtol(1e-30)
                .build()
                .expect("valid configuration");
            let t0 = std::time::Instant::now();
            let mut solver = Claire::new(cfg);
            let (_, report) =
                solver.register_from(&prob.template, &prob.reference, None, "SYN", comm);
            (t0.elapsed().as_secs_f64(), report.rel_mismatch)
        };
        let res = if proc_mode {
            claire::ipc::run_socket_cluster(Topology::new(p, 4), solve)
        } else {
            run_cluster(Topology::new(p, 4), solve)
        };
        let wall = res.outputs.iter().map(|o| o.0).fold(0.0, f64::max);
        let stats = res.total_stats();
        let mb = |c: CommCat| stats.cat(c).bytes_sent as f64 / 1e6;
        println!(
            "{:>5} | {:>9.2} {:>12.4} {:>7.1} | {:>10.2} {:>10.2} {:>10.2} {:>10.2}",
            p,
            wall,
            res.modeled_wall_time(),
            100.0 * res.modeled_comm_fraction(),
            mb(CommCat::Ghost),
            mb(CommCat::Scatter) + mb(CommCat::InterpValues),
            mb(CommCat::FftTranspose),
            mb(CommCat::Reduce),
        );
        // all ranks must agree on the result
        let m0 = res.outputs[0].1;
        assert!(res.outputs.iter().all(|o| (o.1 - m0).abs() < 1e-12));
    }
    println!("\nThe mismatch is identical on every rank count: the distributed solver is");
    println!("bit-consistent with the serial one (same math, same collectives).");
}
