//! Atlas-to-subject annotation transfer (the paper's Fig. 2 use case).
//!
//! ```bash
//! cargo run --release --example annotation_transfer -- [n]
//! ```
//!
//! "Once we have found the diffeomorphism, we can transfer the annotations
//! of the anatomical regions identified in the atlas to the CLARITY
//! dataset, and study anatomical subregions." This example runs that
//! pipeline on the brain phantom: register the atlas to a subject,
//! transport the atlas's ventricle annotation with the computed velocity,
//! and score the transferred label against the subject's own (known)
//! ventricle region with the Dice overlap — the NIREP-style accuracy
//! metric.

use claire::core::metrics;
use claire::data::brain;
use claire::interp::Interpolator;
use claire::prelude::*;
use claire::semilag::{Trajectory, Transport};

/// Ventricle indicator of the canonical atlas geometry (the two dark
/// slots of `brain::canonical`), as a soft mask.
fn ventricle_mask(layout: Layout) -> ScalarField {
    let c = [claire::grid::PI, claire::grid::PI, claire::grid::PI];
    ScalarField::from_fn(layout, move |x1, x2, x3| {
        let slot = |cy: Real| {
            let d = ((0.5 * (x1 - c[0])).sin() * 2.0 / 0.45).powi(2)
                + ((0.5 * (x2 - (c[1] + cy))).sin() * 2.0 / 0.18).powi(2)
                + ((0.5 * (x3 - (c[2] + 0.15))).sin() * 2.0 / 0.35).powi(2);
            (-d).exp()
        };
        (slot(-0.35) + slot(0.35)).min(1.0)
    })
}

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(24);
    let mut comm = Comm::solo();
    let layout = Layout::serial(Grid::cube(n));

    // The subject is the atlas warped by a known subject-specific
    // diffeomorphism, so its "true" ventricle annotation is the atlas mask
    // transported by that same warp — ground truth for scoring.
    println!("generating atlas (na01) and subject (na05) at {n}^3 ...");
    let atlas = brain::subject("na01", layout, &mut comm);
    let subject = brain::subject("na05", layout, &mut comm);
    let atlas_mask = ventricle_mask(layout);
    let subject_mask = {
        let v_subj = brain::random_smooth_velocity(layout, 1005, 0.35, 2);
        let mut ip = Interpolator::new(IpOrder::Cubic);
        let tr = Transport::new(4, IpOrder::Cubic);
        let traj = Trajectory::compute(&v_subj, 4, &mut ip, &mut comm);
        let mut sol = tr.solve_state(&traj, &atlas_mask, false, &mut ip, &mut comm);
        sol.m.pop().unwrap()
    };

    // register atlas -> subject
    let cfg = RegistrationConfig::builder()
        .nt(4)
        .ip_order(IpOrder::Cubic)
        .beta(5e-4)
        .max_gn_iter(10)
        .build()
        .expect("valid configuration");
    println!("registering atlas -> subject with {} ...", cfg.precond.label());
    let mut solver = Claire::new(cfg);
    let (v, report) = solver.register_from(&atlas, &subject, None, "na05", &mut comm);
    println!(
        "  mismatch {:.3e}, GN {}, PCG {}, det(∇y) ∈ [{:.3}, {:.3}]",
        report.rel_mismatch,
        report.gn_iters,
        report.pcg_iters,
        report.jac_det_min,
        report.jac_det_max
    );

    // transfer the annotation: transport the atlas mask with the computed v
    let mut ip = Interpolator::new(IpOrder::Cubic);
    let tr = Transport::new(4, IpOrder::Cubic);
    let traj = Trajectory::compute(&v, 4, &mut ip, &mut comm);
    let transferred = {
        let mut sol = tr.solve_state(&traj, &atlas_mask, false, &mut ip, &mut comm);
        sol.m.pop().unwrap()
    };

    let dice_before = metrics::dice(&atlas_mask, &subject_mask, 0.5, &mut comm);
    let dice_after = metrics::dice(&transferred, &subject_mask, 0.5, &mut comm);
    let jaccard_after = metrics::jaccard(&transferred, &subject_mask, 0.5, &mut comm);
    println!("\nannotation overlap with the subject's true ventricles:");
    println!("  Dice before registration : {dice_before:.3}");
    println!("  Dice after registration  : {dice_after:.3}");
    println!("  Jaccard after            : {jaccard_after:.3}");
    assert!(dice_after > dice_before, "registration must improve the annotation overlap");
    println!(
        "\nok: the transferred annotation matches the subject anatomy better after registration."
    );
}
