//! CLARITY-scale registration (the paper's Fig. 2 / Table 6 CLARITY runs).
//!
//! ```bash
//! cargo run --release --example clarity_registration -- [n]
//! ```
//!
//! Registers two CLARITY-like phantom volumes on an anisotropic grid
//! (2n × n × n, like the paper's 1024×384×384 crop) with the looser inner
//! tolerance `εH0 = 1e-2` the paper uses for this high-frequency data.

use claire::data::clarity;
use claire::prelude::*;

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(24);

    let mut comm = Comm::solo();
    let size = [2 * n, n, n];
    let layout = Layout::serial(Grid::new(size));
    println!(
        "generating CLARITY-like pair at {}x{}x{} (speckle + vessels) ...",
        size[0], size[1], size[2]
    );
    let (m0, m1) = clarity::pair(layout, &mut comm);

    println!("\n{}", RegistrationReport::header());
    for pc in [PrecondKind::InvA, PrecondKind::TwoLevelInvH0] {
        let cfg = RegistrationConfig::builder()
            .nt(4)
            .precond(pc)
            .eps_h0(1e-2) // paper's CLARITY setting
            .beta(5e-4)
            .max_gn_iter(10)
            .build()
            .expect("valid configuration");
        let mut solver = Claire::new(cfg);
        let (_, report) = solver.register_from(&m0, &m1, None, "clarity", &mut comm);
        println!("{}", report.row());
        // CLARITY registrations plateau at a higher mismatch than MRI
        // (speckle is not alignable); the paper reports ~2e-1.
        assert!(report.rel_mismatch < 1.0);
    }
    println!("\nnote: like the paper's CLARITY rows, the mismatch plateaus well above the NIREP");
    println!("level — the speckle content is not registrable, only the anatomy is.");
}
