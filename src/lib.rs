//! # CLAIRE-rs
//!
//! A Rust reproduction of *"Multi-Node Multi-GPU Diffeomorphic Image
//! Registration for Large-Scale Imaging Problems"* (Brunn, Himthani, Biros,
//! Mehl, Mang — SC 2020), the multi-node multi-GPU extension of the CLAIRE
//! library for large-deformation diffeomorphic image registration.
//!
//! This umbrella crate re-exports every subsystem:
//!
//! * [`mpi`] — virtual cluster (ranks-as-threads) message passing with
//!   byte-accurate traffic instrumentation and a calibrated modeled clock
//! * [`grid`] — periodic grids, scalar/vector fields, slab decomposition
//! * [`fft`] — mixed-radix FFTs, serial and slab-decomposed distributed 3D
//! * [`diff`] — 8th-order finite differences and spectral operators
//! * [`interp`] — trilinear/cubic Lagrange and distributed scattered
//!   interpolation
//! * [`semilag`] — semi-Lagrangian transport (state/adjoint/incremental)
//! * [`opt`] — matrix-free PCG and Gauss–Newton–Krylov optimization
//! * [`core`] — the registration problem, preconditioners (InvA, InvH0,
//!   2LInvH0), β-continuation, and the end-to-end solver
//! * [`data`] — synthetic datasets (SYN, brain phantom, CLARITY-like) and
//!   NIfTI-1 I/O
//! * [`perf`] — the calibrated performance model regenerating the paper's
//!   scaling tables
//! * [`par`] — shared-memory parallel kernel execution (the CPU analogue of
//!   the paper's GPU thread blocks) with deterministic reductions and
//!   per-kernel timing counters
//!
//! * [`ipc`] — true multi-process execution: the Unix-domain-socket
//!   [`mpi::Transport`], rendezvous bootstrap, and the rank process
//!   launcher behind `claire-cli launch`
//! * [`obs`] — spans, metrics, and the unified [`obs::report::RunReport`]
//!   (enable with [`core::observe::begin`], collect with
//!   [`core::observe::collect_run_report`])
//! * [`serve`] — multi-tenant job service, in-process or over TCP:
//!   bounded admission queue with priorities, per-job deadlines and
//!   cancellation, a worker pool partitioning the thread budget, batch
//!   coalescing into shared [`core::BatchSolver`] runs, a content-hash
//!   result cache, per-tenant quotas, a versioned length-framed wire
//!   protocol (`serve::wire`) with a blocking client, and a
//!   consistent-hash sharding router (drives `claire-cli serve`/`submit`
//!   and `claire-router`)
//!
//! ## Quickstart
//!
//! One `use` suffices — see `examples/quickstart.rs`:
//!
//! ```no_run
//! use claire::prelude::*;
//!
//! let mut comm = Comm::solo();
//! let prob = syn_problem([32, 32, 32], &mut comm);
//! let cfg = RegistrationConfig::builder().nt(4).beta(1e-2).build().unwrap();
//! let mut solver = Claire::new(cfg);
//! let (velocity, report) = solver.register(&prob.template, &prob.reference, &mut comm);
//! println!("mismatch reduced to {:.3e}", report.rel_mismatch);
//! # let _ = velocity;
//! ```

pub use claire_core as core;
pub use claire_data as data;
pub use claire_diff as diff;
pub use claire_fft as fft;
pub use claire_grid as grid;
pub use claire_interp as interp;
pub use claire_ipc as ipc;
pub use claire_mpi as mpi;
pub use claire_obs as obs;
pub use claire_opt as opt;
pub use claire_par as par;
pub use claire_perf as perf;
pub use claire_semilag as semilag;
pub use claire_serve as serve;

/// Everything a typical registration program needs, one `use` away.
///
/// Covers the solver front door ([`core::Claire`], the validating
/// [`core::RegistrationConfig::builder`]), fields and grids, the virtual
/// cluster, synthetic problems, observability entry points, and the typed
/// error. Subsystem internals stay behind their module paths.
pub mod prelude {
    pub use crate::core::observe::{begin as begin_observing, collect_run_report};
    pub use crate::core::{
        BatchOutcome, BatchPair, BatchSolver, Claire, ClaireError, ClaireResult, PrecondKind,
        RegProblem, RegistrationConfig, RegistrationConfigBuilder, RegistrationReport,
    };
    pub use crate::data::syn::{syn_problem, SynProblem};
    pub use crate::grid::{Grid, Layout, Real, ScalarField, VectorField};
    pub use crate::interp::IpOrder;
    pub use crate::mpi::{run_cluster, Comm, CommCat, Topology};
    pub use crate::obs::report::RunReport;
    pub use crate::serve::{
        Admission, Client, JobId, JobInput, JobResult, JobSpec, JobStatus, NetServer,
        NetServerConfig, Priority, QuotaConfig, RegistrationService, RemoteAdmission,
        RemoteJobResult, Router, ServiceConfig, StreamEvent, SubmitError, WireError, WireInput,
        WireJobSpec, PROTOCOL_VERSION,
    };
}
