//! `claire-cli` — register NIfTI volumes from the command line.
//!
//! ```bash
//! claire-cli <template.nii> <reference.nii> [options]
//! claire-cli batch <manifest.json> [batch options]
//! claire-cli serve --listen ADDR [serve options]
//! claire-cli submit --addr ADDR <manifest.json> [submit options]
//! claire-cli launch --ranks N --syn M [launch options]
//!
//! options:
//!   -o DIR           output directory (default: claire_out)
//!   --precond NAME   InvA | InvH0 | 2LInvH0          (default: 2LInvH0)
//!   --beta VALUE     target regularization parameter (default: 5e-4)
//!   --nt N           semi-Lagrangian time steps      (default: 4)
//!   --order KIND     linear | cubic                  (default: cubic)
//!   --grid-cont      enable coarse-to-fine grid continuation
//!   --store-grad     cache the state gradient (faster, more memory)
//!   --eps-h0 VALUE   inner H0 tolerance scale        (default: 1e-3)
//!   --report PATH    write a unified RunReport JSON (spans, metrics,
//!                    per-phase timings, per-collective traffic) to PATH
//!                    and print the span-tree summary on exit
//!   --syn N          skip the NIfTI inputs and register the synthetic
//!                    N³ sinusoidal problem (smoke tests, CI)
//!   -q               quiet (no per-iteration log)
//!
//! batch options:
//!   -o DIR           output directory for per-job reports (default: claire_out)
//!   --workers N      worker threads (overrides the manifest)
//!   --queue-cap N    admission-queue capacity (overrides the manifest)
//!   --threads N      machine thread budget to partition across workers
//!   --no-batch       disable job coalescing (one BatchSolver run per
//!                    group of queued jobs with identical grid/config is
//!                    the default fast path)
//!   --max-batch N    largest coalesced batch (default: 8)
//!   -q               quiet
//!
//! serve options (plus --workers/--queue-cap/--threads/--no-batch/
//! --max-batch/-q as in batch mode):
//!   --listen ADDR    TCP address to bind (e.g. 127.0.0.1:7741; port 0
//!                    picks a free port, printed on stdout)
//!   --cache N        content-hash result cache capacity in entries
//!                    (default: 0 = off); repeated identical submissions
//!                    are answered without running the solver
//!   --quota B:R      per-tenant token bucket: burst B jobs, refill R
//!                    jobs/second (default: unlimited)
//!
//! submit options:
//!   --addr ADDR      server (or claire-router) address to submit to
//!   -o DIR           output directory for per-job reports (default:
//!                    claire_out)
//!   --tenant NAME    tenant for quota accounting (default: "")
//!   --stream         print one JSON status event per line on stdout
//!                    (queued/running/gn_iter/terminal) while each job runs
//!   --ping           just check the server answers the handshake; exit 0/1
//!   -q               quiet
//!
//! launch options:
//!   --ranks N        rank processes to spawn (required)
//!   --syn M          synthetic M³ problem size (required; launch mode is
//!                    driven by the synthetic dataset so every rank can
//!                    generate its own slab without shared input files)
//!   --gpus-per-node G  modeled topology (default: 4)
//!   --nt N           semi-Lagrangian time steps          (default: 4)
//!   --beta V         regularization parameter            (default: 1e-2)
//!   --order KIND     linear | cubic                      (default: linear)
//!   --precond NAME   InvA | InvH0 | 2LInvH0              (default: InvA)
//!   --max-gn N       Gauss–Newton iteration cap          (default: 3)
//!   --fixed-pcg N    fixed PCG iterations per GN step    (default: 5)
//!   --timeout SECS   supervision budget before the cluster is reaped
//!                    (default: 300)
//!   --report PATH    write rank 0's merged RunReport JSON to PATH
//!   --in-process     run the identical solve on the threads-as-ranks
//!                    virtual cluster instead of spawning processes (the
//!                    two modes produce bitwise-identical trajectories;
//!                    CI diffs their reports)
//!   -q               quiet
//! ```
//!
//! Single mode writes `deformed_template.nii`, `velocity_[123].nii`,
//! `jacobian_det.nii` and `report.json` to the output directory. Batch mode
//! runs every job in the manifest through the `claire-serve` worker pool
//! and writes one report JSON per job. `serve` exposes the same worker pool
//! over the versioned claire-serve wire protocol; `submit` sends a batch
//! manifest to such a server (or to `claire-router`, which shards across
//! several) and writes the same per-job reports. For multi-client or
//! multi-machine use prefer `serve` + `submit`: in-process `batch` stays
//! supported for single-shot local runs but new scheduling features
//! (result cache, tenant quotas, sharding) land on the served path only.
//!
//! `launch` spawns N `worker-rank` child processes (a hidden subcommand)
//! that bootstrap a Unix-domain-socket mesh in a private rendezvous
//! directory, solve the synthetic problem as a real multi-process cluster,
//! and stream their RunReports back to the launcher. A child that dies is
//! detected and the rest of the cluster reaped — never a hang.
//!
//! Exit codes: 0 success, 2 usage, and one code per `ClaireError` variant —
//! 3 configuration, 4 layout mismatch, 5 decomposition, 6 I/O, 7 cancelled
//! or deadline expired, 8 rank failed (a launched worker process died or a
//! virtual-cluster rank panicked). Batch mode exits 1 when any job ends
//! non-succeeded.

use claire::core::{observe, Claire, ClaireError, PrecondKind, RegistrationConfig, SolverHooks};
use claire::data::nifti;
use claire::interp::{Interpolator, IpOrder};
use claire::ipc::{LaunchSpec, SocketOpts, SocketTransport};
use claire::mpi::{Comm, LinkModel, Topology, TransportError};
use claire::obs::report::RunReport;
use claire::semilag::{displacement, Trajectory};
use claire::serve::{
    Client, JobInput, JobSpec, JobStatus, NetServer, NetServerConfig, Priority, QuotaConfig,
    RegistrationService, ServiceConfig, StreamEvent, WireJobSpec,
};
use serde_json::Value;
use std::path::{Path, PathBuf};
use std::process::exit;
use std::time::Duration;

/// One distinct nonzero exit code per `ClaireError` variant.
fn error_exit_code(e: &ClaireError) -> i32 {
    match e {
        ClaireError::Config { .. } => 3,
        ClaireError::LayoutMismatch { .. } => 4,
        ClaireError::Decomposition { .. } => 5,
        ClaireError::Io { .. } => 6,
        ClaireError::Cancelled { .. } => 7,
        ClaireError::RankFailed { .. } => 8,
    }
}

/// Print the typed error to stderr and exit with its code.
fn fail(e: &ClaireError) -> ! {
    eprintln!("claire-cli: {e}");
    exit(error_exit_code(e))
}

fn io_error(context: &'static str, path: &Path, e: &std::io::Error) -> ClaireError {
    ClaireError::Io { context, message: format!("{}: {e}", path.display()) }
}

struct Options {
    template: PathBuf,
    reference: PathBuf,
    out: PathBuf,
    report: Option<PathBuf>,
    syn: Option<usize>,
    cfg: RegistrationConfig,
}

fn usage() -> ! {
    eprintln!(
        "usage: claire-cli <template.nii> <reference.nii> [-o DIR] [--precond InvA|InvH0|2LInvH0]"
    );
    eprintln!(
        "                  [--beta V] [--nt N] [--order linear|cubic] [--grid-cont] [--store-grad]"
    );
    eprintln!("                  [--eps-h0 V] [--report PATH] [--syn N] [-q]");
    eprintln!("       claire-cli batch <manifest.json> [-o DIR] [--workers N] [--queue-cap N]");
    eprintln!("                  [--threads N] [--no-batch] [--max-batch N] [-q]");
    eprintln!("       claire-cli serve --listen ADDR [--workers N] [--queue-cap N] [--threads N]");
    eprintln!("                  [--no-batch] [--max-batch N] [--cache N] [--quota B:R] [-q]");
    eprintln!("       claire-cli submit --addr ADDR <manifest.json> [-o DIR] [--tenant NAME]");
    eprintln!("                  [--stream] [--ping] [-q]");
    eprintln!("       claire-cli launch --ranks N --syn M [--gpus-per-node G] [--nt N] [--beta V]");
    eprintln!("                  [--order linear|cubic] [--precond NAME] [--max-gn N]");
    eprintln!(
        "                  [--fixed-pcg N] [--timeout SECS] [--report PATH] [--in-process] [-q]"
    );
    eprintln!();
    eprintln!("note: `batch` runs jobs in-process and stays supported for one-shot local");
    eprintln!("runs; shared deployments should move to `serve` + `submit` (same manifest),");
    eprintln!("where new scheduling features (result cache, quotas, sharding) land.");
    exit(2)
}

fn parse_args(args: Vec<String>) -> Options {
    let mut args = args.into_iter();
    let mut positional: Vec<String> = Vec::new();
    let mut out = PathBuf::from("claire_out");
    let mut report = None;
    let mut syn = None;
    let mut cfg = RegistrationConfig::builder().ip_order(IpOrder::Cubic).verbose(true);
    let next_value = |args: &mut dyn Iterator<Item = String>, flag: &str| -> String {
        args.next().unwrap_or_else(|| {
            eprintln!("missing value for {flag}");
            usage()
        })
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "-o" => out = PathBuf::from(next_value(&mut args, "-o")),
            "--precond" => {
                cfg = cfg.precond(match next_value(&mut args, "--precond").as_str() {
                    "InvA" => PrecondKind::InvA,
                    "InvH0" => PrecondKind::InvH0,
                    "2LInvH0" => PrecondKind::TwoLevelInvH0,
                    other => {
                        eprintln!("unknown preconditioner {other}");
                        usage()
                    }
                })
            }
            "--beta" => {
                cfg = cfg.beta(next_value(&mut args, "--beta").parse().unwrap_or_else(|_| usage()))
            }
            "--nt" => {
                cfg = cfg.nt(next_value(&mut args, "--nt").parse().unwrap_or_else(|_| usage()))
            }
            "--order" => {
                cfg = cfg.ip_order(match next_value(&mut args, "--order").as_str() {
                    "linear" => IpOrder::Linear,
                    "cubic" => IpOrder::Cubic,
                    other => {
                        eprintln!("unknown interpolation order {other}");
                        usage()
                    }
                })
            }
            "--grid-cont" => cfg = cfg.grid_continuation(true),
            "--store-grad" => cfg = cfg.store_grad(true),
            "--eps-h0" => {
                cfg = cfg
                    .eps_h0(next_value(&mut args, "--eps-h0").parse().unwrap_or_else(|_| usage()))
            }
            "--report" => report = Some(PathBuf::from(next_value(&mut args, "--report"))),
            "--syn" => {
                syn = Some(next_value(&mut args, "--syn").parse().unwrap_or_else(|_| usage()))
            }
            "-q" => cfg = cfg.verbose(false),
            "-h" | "--help" => usage(),
            other if other.starts_with('-') => {
                eprintln!("unknown option {other}");
                usage()
            }
            other => positional.push(other.to_string()),
        }
    }
    match (syn.is_some(), positional.len()) {
        (true, 0) | (false, 2) => {}
        _ => usage(),
    }
    if let Some(n) = syn {
        // Grid::new asserts this; catch it here for a typed error instead
        if n < 2 {
            fail(&ClaireError::Config {
                param: "syn",
                message: format!("grid needs >= 2 points per dim, got {n}"),
            });
        }
    }
    let cfg = cfg.build().unwrap_or_else(|e| fail(&e));
    let get = |i: usize| positional.get(i).map(PathBuf::from).unwrap_or_default();
    Options { template: get(0), reference: get(1), out, report, syn, cfg }
}

fn load(path: &Path) -> claire::grid::ScalarField {
    nifti::read(path).unwrap_or_else(|e| fail(&io_error("nifti::read", path, &e)))
}

fn write_nifti(path: &Path, field: &claire::grid::ScalarField) {
    nifti::write(path, field).unwrap_or_else(|e| fail(&io_error("nifti::write", path, &e)));
}

fn create_dir(dir: &Path) {
    std::fs::create_dir_all(dir).unwrap_or_else(|e| fail(&io_error("create_dir_all", dir, &e)));
}

fn write_text(path: &Path, text: &str) {
    std::fs::write(path, text).unwrap_or_else(|e| fail(&io_error("fs::write", path, &e)));
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("batch") => {
            args.remove(0);
            batch_main(args);
        }
        Some("serve") => {
            args.remove(0);
            serve_main(args);
        }
        Some("submit") => {
            args.remove(0);
            submit_main(args);
        }
        Some("launch") => {
            args.remove(0);
            launch_main(args);
        }
        Some("worker-rank") => {
            args.remove(0);
            worker_rank_main(args);
        }
        _ => single_main(parse_args(args)),
    }
}

fn single_main(opts: Options) {
    let mut comm = Comm::solo();

    let (m0, m1) = match opts.syn {
        Some(n) => {
            let prob = claire::data::syn::syn_problem([n, n, n], &mut comm);
            (prob.template, prob.reference)
        }
        None => {
            let m0 = load(&opts.template);
            let m1 = load(&opts.reference);
            if m0.layout().grid != m1.layout().grid {
                fail(&ClaireError::LayoutMismatch {
                    context: "claire-cli",
                    message: format!(
                        "template grid {:?} vs reference grid {:?}",
                        m0.layout().grid.n,
                        m1.layout().grid.n
                    ),
                });
            }
            (m0, m1)
        }
    };
    let label = match opts.syn {
        Some(_) => "syn".to_string(),
        None => format!("{} -> {}", opts.template.display(), opts.reference.display()),
    };
    eprintln!(
        "registering {} at {:?} with {} (β -> {:.1e})",
        label,
        m0.layout().grid.n,
        opts.cfg.precond.label(),
        opts.cfg.beta_target
    );

    let cfg = opts.cfg;
    if opts.report.is_some() {
        observe::begin();
    }
    let mut solver = Claire::new(cfg);
    let t0 = std::time::Instant::now();
    let (v, report) =
        solver.try_register_from(&m0, &m1, None, "cli", &mut comm).unwrap_or_else(|e| fail(&e));
    eprintln!(
        "done in {:.1}s: mismatch {:.3e}, GN {}, PCG {}, det(∇y) ∈ [{:.3}, {:.3}]",
        t0.elapsed().as_secs_f64(),
        report.rel_mismatch,
        report.gn_iters,
        report.pcg_iters,
        report.jac_det_min,
        report.jac_det_max
    );

    if let Some(path) = &opts.report {
        let run = observe::collect_run_report("cli", &report, &comm);
        eprint!("{}", run.span_summary());
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            create_dir(dir);
        }
        write_text(path, &run.to_json());
        eprintln!("wrote run report to {}", path.display());
    }

    create_dir(&opts.out);
    // deformed template
    let mut problem = claire::core::RegProblem::new(m0.clone(), m1.clone(), cfg, &mut comm)
        .unwrap_or_else(|e| fail(&e));
    let deformed = problem.deformed_template(&v, &mut comm);
    write_nifti(&opts.out.join("deformed_template.nii"), &deformed);
    // velocity components
    for (d, comp) in v.c.iter().enumerate() {
        write_nifti(&opts.out.join(format!("velocity_{}.nii", d + 1)), comp);
    }
    // Jacobian determinant map
    let mut ip = Interpolator::new(cfg.ip_order);
    let traj = Trajectory::compute(&v, cfg.nt, &mut ip, &mut comm);
    let u = displacement::displacement(&traj, cfg.nt, &mut ip, &mut comm);
    let det = displacement::jacobian_det(&u, &mut comm);
    write_nifti(&opts.out.join("jacobian_det.nii"), &det);
    // machine-readable report
    let json = serde_json::to_string_pretty(&report)
        .unwrap_or_else(|e| fail(&ClaireError::Io { context: "report", message: e.to_string() }));
    write_text(&opts.out.join("report.json"), &json);
    eprintln!("wrote results to {}", opts.out.display());
}

// ---------------------------------------------------------------------------
// batch mode
// ---------------------------------------------------------------------------

/// Look up `key` in a JSON object.
fn field<'a>(v: &'a Value, key: &str) -> Option<&'a Value> {
    match v {
        Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
        _ => None,
    }
}

fn field_u64(v: &Value, key: &str) -> Option<u64> {
    match field(v, key)? {
        Value::UInt(n) => Some(*n),
        Value::Int(n) if *n >= 0 => Some(*n as u64),
        Value::Num(x) if *x >= 0.0 && x.fract() == 0.0 => Some(*x as u64),
        _ => None,
    }
}

fn field_f64(v: &Value, key: &str) -> Option<f64> {
    match field(v, key)? {
        Value::Num(x) => Some(*x),
        Value::UInt(n) => Some(*n as f64),
        Value::Int(n) => Some(*n as f64),
        _ => None,
    }
}

fn field_str<'a>(v: &'a Value, key: &str) -> Option<&'a str> {
    match field(v, key)? {
        Value::Str(s) => Some(s.as_str()),
        _ => None,
    }
}

fn manifest_error(message: String) -> ClaireError {
    ClaireError::Config { param: "manifest", message }
}

/// Build one [`JobSpec`] from a manifest entry.
fn parse_job(entry: &Value, index: usize, quiet: bool) -> Result<JobSpec, ClaireError> {
    let label = field_str(entry, "label").map(String::from).unwrap_or(format!("job-{index}"));
    let mut cfg = RegistrationConfig::builder().verbose(false);
    if let Some(nt) = field_u64(entry, "nt") {
        cfg = cfg.nt(nt as usize);
    }
    if let Some(beta) = field_f64(entry, "beta") {
        cfg = cfg.beta(beta);
    }
    if let Some(n) = field_u64(entry, "max_gn_iter") {
        cfg = cfg.max_gn_iter(n as usize);
    }
    if let Some(n) = field_u64(entry, "max_pcg_iter") {
        cfg = cfg.max_pcg_iter(n as usize);
    }
    if let Some(Value::Bool(b)) = field(entry, "continuation") {
        cfg = cfg.continuation(*b);
    }
    if let Some(pc) = field_str(entry, "precond") {
        cfg = cfg.precond(match pc {
            "InvA" => PrecondKind::InvA,
            "InvH0" => PrecondKind::InvH0,
            "2LInvH0" => PrecondKind::TwoLevelInvH0,
            other => {
                return Err(manifest_error(format!("{label}: unknown preconditioner {other}")))
            }
        });
    }
    let config = cfg.build()?;

    let input = if let Some(n) = field_u64(entry, "syn") {
        JobInput::Synthetic { n: [n as usize; 3] }
    } else {
        let template = field_str(entry, "template")
            .ok_or_else(|| manifest_error(format!("{label}: needs `syn` or `template`")))?;
        let reference = field_str(entry, "reference")
            .ok_or_else(|| manifest_error(format!("{label}: needs `reference`")))?;
        let t = PathBuf::from(template);
        let r = PathBuf::from(reference);
        let m0 = nifti::read(&t).map_err(|e| io_error("nifti::read", &t, &e))?;
        let m1 = nifti::read(&r).map_err(|e| io_error("nifti::read", &r, &e))?;
        JobInput::Pair { template: m0, reference: m1 }
    };

    let mut spec = JobSpec::new(label.clone(), config, input);
    if let Some(p) = field_str(entry, "priority") {
        spec = spec.priority(
            Priority::parse(p)
                .ok_or_else(|| manifest_error(format!("{label}: unknown priority {p}")))?,
        );
    }
    if let Some(ms) = field_u64(entry, "deadline_ms") {
        spec = spec.deadline(Duration::from_millis(ms));
    }
    if !quiet {
        eprintln!("  {label}: grid {:?}, priority {}", spec.input.grid(), spec.priority.label());
    }
    Ok(spec)
}

/// Turn a job label into a safe report file name.
fn report_file_name(label: &str) -> String {
    let safe: String = label
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() || c == '-' || c == '_' { c } else { '_' })
        .collect();
    format!("{safe}.json")
}

fn batch_main(args: Vec<String>) {
    let mut args = args.into_iter();
    let mut manifest_path: Option<PathBuf> = None;
    let mut out = PathBuf::from("claire_out");
    let mut workers: Option<usize> = None;
    let mut queue_cap: Option<usize> = None;
    let mut threads: Option<usize> = None;
    let mut batching = true;
    let mut max_batch: Option<usize> = None;
    let mut quiet = false;
    let next_value = |args: &mut dyn Iterator<Item = String>, flag: &str| -> String {
        args.next().unwrap_or_else(|| {
            eprintln!("missing value for {flag}");
            usage()
        })
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "-o" => out = PathBuf::from(next_value(&mut args, "-o")),
            "--workers" => {
                workers =
                    Some(next_value(&mut args, "--workers").parse().unwrap_or_else(|_| usage()))
            }
            "--queue-cap" => {
                queue_cap =
                    Some(next_value(&mut args, "--queue-cap").parse().unwrap_or_else(|_| usage()))
            }
            "--threads" => {
                threads =
                    Some(next_value(&mut args, "--threads").parse().unwrap_or_else(|_| usage()))
            }
            "--no-batch" => batching = false,
            "--max-batch" => {
                max_batch =
                    Some(next_value(&mut args, "--max-batch").parse().unwrap_or_else(|_| usage()))
            }
            "-q" => quiet = true,
            "-h" | "--help" => usage(),
            other if other.starts_with('-') => {
                eprintln!("unknown option {other}");
                usage()
            }
            other if manifest_path.is_none() => manifest_path = Some(PathBuf::from(other)),
            _ => usage(),
        }
    }
    let manifest_path = manifest_path.unwrap_or_else(|| usage());

    let text = std::fs::read_to_string(&manifest_path)
        .unwrap_or_else(|e| fail(&io_error("batch manifest", &manifest_path, &e)));
    let manifest = serde_json::from_str(&text)
        .unwrap_or_else(|e| fail(&manifest_error(format!("not valid JSON: {e}"))));
    let jobs = match field(&manifest, "jobs") {
        Some(Value::Array(jobs)) if !jobs.is_empty() => jobs,
        _ => fail(&manifest_error("needs a non-empty `jobs` array".into())),
    };

    let mut svc_cfg = ServiceConfig::default()
        .workers(workers.or(field_u64(&manifest, "workers").map(|n| n as usize)).unwrap_or(1))
        .queue_capacity(
            queue_cap
                .or(field_u64(&manifest, "queue_capacity").map(|n| n as usize))
                .unwrap_or_else(|| jobs.len().max(1)),
        );
    if let Some(t) = threads {
        svc_cfg = svc_cfg.total_threads(t);
    }
    // Fast path: queued jobs with identical grid/config fingerprints are
    // coalesced into one BatchSolver run (shared FFT plans and scaffolding,
    // interleaved iterations); results stay bitwise identical to solo runs.
    svc_cfg = svc_cfg.batching(batching);
    if let Some(m) = max_batch {
        svc_cfg = svc_cfg.max_batch(m);
    }
    if !quiet {
        eprintln!(
            "batch: {} job(s), {} worker(s), queue capacity {}, coalescing {}",
            jobs.len(),
            svc_cfg.workers,
            svc_cfg.queue_capacity,
            if svc_cfg.batching { "on" } else { "off" }
        );
    }

    let specs: Vec<JobSpec> = jobs
        .iter()
        .enumerate()
        .map(|(i, entry)| parse_job(entry, i, quiet).unwrap_or_else(|e| fail(&e)))
        .collect();

    create_dir(&out);
    observe::begin(); // span trees feed the per-job reports
    let mut svc = RegistrationService::start(svc_cfg);
    // Blocking submission: the CLI is a closed-loop producer, so a full
    // queue applies backpressure here instead of dropping jobs.
    let ids: Vec<_> = specs
        .into_iter()
        .map(|spec| {
            svc.submit(spec).unwrap_or_else(|e| {
                eprintln!("claire-cli: batch submission failed: {e}");
                exit(match e {
                    claire::serve::SubmitError::Invalid(inner) => error_exit_code(&inner),
                    _ => 1,
                })
            })
        })
        .collect();

    let mut failures = 0usize;
    for id in ids {
        let Some(res) = svc.wait(id) else {
            eprintln!("claire-cli: internal error: {id} vanished from the service");
            exit(1);
        };
        let file = out.join(report_file_name(&res.label));
        match (&res.status, &res.run) {
            (JobStatus::Succeeded, Some(run)) => write_text(&file, &run.to_json()),
            _ => {
                // terminal-but-unsuccessful jobs still get a report file
                let status = res.status.label();
                let error = res.error.clone().unwrap_or_default();
                let doc = Value::Object(vec![
                    ("label".into(), Value::Str(res.label.clone())),
                    ("status".into(), Value::Str(status.into())),
                    ("error".into(), Value::Str(error)),
                ]);
                let json = serde_json::to_string_pretty(&doc).unwrap_or_default();
                write_text(&file, &json);
            }
        }
        if res.status != JobStatus::Succeeded {
            failures += 1;
        }
        if !quiet {
            let mismatch = res
                .report
                .as_ref()
                .map(|r| format!(", mismatch {:.3e}", r.rel_mismatch))
                .unwrap_or_default();
            eprintln!(
                "  {} [{}]: queued {:.3}s, ran {:.3}s{mismatch}",
                res.label,
                res.status,
                res.queue_wait.as_secs_f64(),
                res.run_time.as_secs_f64()
            );
        }
    }
    svc.shutdown();
    claire::obs::set_enabled(false);
    if !quiet {
        eprintln!("wrote batch reports to {}", out.display());
    }
    if failures > 0 {
        eprintln!("claire-cli: {failures} job(s) did not succeed");
        exit(1);
    }
}

// ---------------------------------------------------------------------------
// serve mode (network server)
// ---------------------------------------------------------------------------

fn serve_main(args: Vec<String>) {
    let mut args = args.into_iter();
    let mut listen: Option<String> = None;
    let mut workers: Option<usize> = None;
    let mut queue_cap: Option<usize> = None;
    let mut threads: Option<usize> = None;
    let mut batching = true;
    let mut max_batch: Option<usize> = None;
    let mut cache = 0usize;
    let mut quota: Option<QuotaConfig> = None;
    let mut quiet = false;
    let next_value = |args: &mut dyn Iterator<Item = String>, flag: &str| -> String {
        args.next().unwrap_or_else(|| {
            eprintln!("missing value for {flag}");
            usage()
        })
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--listen" => listen = Some(next_value(&mut args, "--listen")),
            "--workers" => {
                workers =
                    Some(next_value(&mut args, "--workers").parse().unwrap_or_else(|_| usage()))
            }
            "--queue-cap" => {
                queue_cap =
                    Some(next_value(&mut args, "--queue-cap").parse().unwrap_or_else(|_| usage()))
            }
            "--threads" => {
                threads =
                    Some(next_value(&mut args, "--threads").parse().unwrap_or_else(|_| usage()))
            }
            "--no-batch" => batching = false,
            "--max-batch" => {
                max_batch =
                    Some(next_value(&mut args, "--max-batch").parse().unwrap_or_else(|_| usage()))
            }
            "--cache" => {
                cache = next_value(&mut args, "--cache").parse().unwrap_or_else(|_| usage())
            }
            "--quota" => {
                let v = next_value(&mut args, "--quota");
                let (burst, rate) = v.split_once(':').unwrap_or_else(|| usage());
                quota = Some(QuotaConfig::new(
                    burst.parse().unwrap_or_else(|_| usage()),
                    rate.parse().unwrap_or_else(|_| usage()),
                ));
            }
            "-q" => quiet = true,
            "-h" | "--help" => usage(),
            other => {
                eprintln!("unknown option {other}");
                usage()
            }
        }
    }
    let listen = listen.unwrap_or_else(|| usage());

    let mut svc_cfg = ServiceConfig::default()
        .workers(workers.unwrap_or(1))
        .queue_capacity(queue_cap.unwrap_or(64))
        .batching(batching)
        .result_cache(cache);
    if let Some(t) = threads {
        svc_cfg = svc_cfg.total_threads(t);
    }
    if let Some(m) = max_batch {
        svc_cfg = svc_cfg.max_batch(m);
    }
    if let Some(q) = quota {
        svc_cfg = svc_cfg.quota(q);
    }

    let server = NetServer::bind(&listen[..], NetServerConfig::default().service(svc_cfg))
        .unwrap_or_else(|e| {
            fail(&ClaireError::Io { context: "serve --listen", message: format!("{listen}: {e}") })
        });
    // The bound address goes to stdout so scripts can scrape it (port 0).
    println!("claire-serve listening on {}", server.local_addr());
    use std::io::Write as _;
    std::io::stdout().flush().ok();
    if !quiet {
        eprintln!(
            "workers {}, queue capacity {}, coalescing {}, cache {} entries, quota {}",
            workers.unwrap_or(1),
            queue_cap.unwrap_or(64),
            if batching { "on" } else { "off" },
            cache,
            match quota {
                Some(q) => format!("{}:{} per tenant", q.burst, q.per_sec),
                None => "unlimited".into(),
            }
        );
    }
    // Serve until killed; job lifecycle is driven by connection threads.
    loop {
        std::thread::park();
    }
}

// ---------------------------------------------------------------------------
// submit mode (network client)
// ---------------------------------------------------------------------------

/// Render one streamed status event as a JSON line for stdout.
fn event_line(label: &str, id: claire::serve::JobId, event: StreamEvent) -> String {
    let (kind, extra) = match event {
        StreamEvent::Queued => ("queued", String::new()),
        StreamEvent::Running => ("running", String::new()),
        StreamEvent::GnIter { iter } => ("gn_iter", format!(",\"iter\":{iter}")),
        StreamEvent::Terminal { status } => {
            ("terminal", format!(",\"status\":\"{}\"", status.label()))
        }
        _ => ("unknown", String::new()),
    };
    format!(
        "{{\"type\":\"event\",\"job\":\"{id}\",\"label\":\"{label}\",\"event\":\"{kind}\"{extra}}}"
    )
}

fn submit_main(args: Vec<String>) {
    let mut args = args.into_iter();
    let mut addr: Option<String> = None;
    let mut manifest_path: Option<PathBuf> = None;
    let mut out = PathBuf::from("claire_out");
    let mut tenant = String::new();
    let mut stream = false;
    let mut ping = false;
    let mut quiet = false;
    let next_value = |args: &mut dyn Iterator<Item = String>, flag: &str| -> String {
        args.next().unwrap_or_else(|| {
            eprintln!("missing value for {flag}");
            usage()
        })
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => addr = Some(next_value(&mut args, "--addr")),
            "-o" => out = PathBuf::from(next_value(&mut args, "-o")),
            "--tenant" => tenant = next_value(&mut args, "--tenant"),
            "--stream" => stream = true,
            "--ping" => ping = true,
            "-q" => quiet = true,
            "-h" | "--help" => usage(),
            other if other.starts_with('-') => {
                eprintln!("unknown option {other}");
                usage()
            }
            other if manifest_path.is_none() => manifest_path = Some(PathBuf::from(other)),
            _ => usage(),
        }
    }
    let addr = addr.unwrap_or_else(|| usage());

    let mut client = match Client::connect(&addr[..]) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("claire-cli: cannot reach {addr}: {e}");
            exit(if ping { 1 } else { 6 })
        }
    };
    if ping {
        if !quiet {
            eprintln!(
                "{} at {addr} answers protocol {}",
                client.server_name(),
                claire::serve::PROTOCOL_VERSION
            );
        }
        return;
    }
    let manifest_path = manifest_path.unwrap_or_else(|| usage());

    // Same manifest format as `batch`; jobs are lowered to wire specs.
    let text = std::fs::read_to_string(&manifest_path)
        .unwrap_or_else(|e| fail(&io_error("submit manifest", &manifest_path, &e)));
    let manifest = serde_json::from_str(&text)
        .unwrap_or_else(|e| fail(&manifest_error(format!("not valid JSON: {e}"))));
    let jobs = match field(&manifest, "jobs") {
        Some(Value::Array(jobs)) if !jobs.is_empty() => jobs,
        _ => fail(&manifest_error("needs a non-empty `jobs` array".into())),
    };
    let specs: Vec<WireJobSpec> = jobs
        .iter()
        .enumerate()
        .map(|(i, entry)| {
            let spec =
                parse_job(entry, i, quiet).unwrap_or_else(|e| fail(&e)).tenant(tenant.clone());
            WireJobSpec::from_spec(&spec)
        })
        .collect();

    create_dir(&out);
    let mut admissions = Vec::with_capacity(specs.len());
    for spec in &specs {
        match client.submit(spec) {
            Ok(adm) => {
                if !quiet {
                    eprintln!(
                        "  submitted {} as {}{}",
                        spec.label,
                        adm.id,
                        if adm.cached { " (cache hit)" } else { "" }
                    );
                }
                admissions.push((spec.label.clone(), adm));
            }
            Err(e) => {
                eprintln!("claire-cli: submission of {} refused: {e}", spec.label);
                exit(1)
            }
        }
    }

    let mut failures = 0usize;
    for (label, adm) in admissions {
        if stream {
            let streamed = client.stream(adm.id, |event| {
                println!("{}", event_line(&label, adm.id, event));
            });
            if let Err(e) = streamed {
                eprintln!("claire-cli: stream for {label} broke: {e}");
                exit(1)
            }
        }
        let res = client.wait(adm.id).unwrap_or_else(|e| {
            eprintln!("claire-cli: waiting on {label} failed: {e}");
            exit(1)
        });
        let file = out.join(report_file_name(&res.label));
        match (&res.status, &res.run) {
            (JobStatus::Succeeded, Some(run)) => {
                let json = serde_json::to_string_pretty(run).unwrap_or_default();
                write_text(&file, &json);
            }
            _ => {
                let doc = Value::Object(vec![
                    ("label".into(), Value::Str(res.label.clone())),
                    ("status".into(), Value::Str(res.status.label().into())),
                    ("error".into(), Value::Str(res.error.clone().unwrap_or_default())),
                ]);
                write_text(&file, &serde_json::to_string_pretty(&doc).unwrap_or_default());
            }
        }
        if res.status != JobStatus::Succeeded {
            failures += 1;
        }
        if !quiet {
            let mismatch = res
                .report
                .as_ref()
                .map(|r| format!(", mismatch {:.3e}", r.rel_mismatch))
                .unwrap_or_default();
            eprintln!(
                "  {} [{}]{}: queued {:.3}s, ran {:.3}s{mismatch}",
                res.label,
                res.status,
                if res.cached { " (cached)" } else { "" },
                res.queue_wait_secs,
                res.run_secs
            );
        }
    }
    if !quiet {
        eprintln!("wrote reports to {}", out.display());
    }
    if failures > 0 {
        eprintln!("claire-cli: {failures} job(s) did not succeed");
        exit(1);
    }
}

// ---------------------------------------------------------------------------
// launch mode (multi-process execution)
// ---------------------------------------------------------------------------

/// Options shared by `launch` and the hidden `worker-rank` subcommand. The
/// launcher re-serializes the solver flags onto every worker's command line,
/// so both sides parse the same grammar and build the same config.
struct LaunchOpts {
    ranks: usize,
    gpus_per_node: usize,
    syn: usize,
    nt: usize,
    beta: f64,
    order: IpOrder,
    precond: PrecondKind,
    max_gn: usize,
    fixed_pcg: usize,
    timeout_secs: u64,
    report: Option<PathBuf>,
    in_process: bool,
    quiet: bool,
    /// Rendezvous directory (worker-rank only).
    dir: Option<PathBuf>,
    /// Own rank (worker-rank only).
    rank: Option<usize>,
}

fn parse_launch_args(args: Vec<String>, worker: bool) -> LaunchOpts {
    let mut o = LaunchOpts {
        ranks: 0,
        gpus_per_node: 4,
        syn: 0,
        nt: 4,
        beta: 1e-2,
        order: IpOrder::Linear,
        precond: PrecondKind::InvA,
        max_gn: 3,
        fixed_pcg: 5,
        timeout_secs: 300,
        report: None,
        in_process: false,
        quiet: false,
        dir: None,
        rank: None,
    };
    fn num<T: std::str::FromStr>(v: String, flag: &str) -> T {
        v.parse().unwrap_or_else(|_| {
            eprintln!("invalid value for {flag}: {v}");
            usage()
        })
    }
    let mut args = args.into_iter();
    let next_value = |args: &mut dyn Iterator<Item = String>, flag: &str| -> String {
        args.next().unwrap_or_else(|| {
            eprintln!("missing value for {flag}");
            usage()
        })
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--ranks" => o.ranks = num(next_value(&mut args, "--ranks"), "--ranks"),
            "--gpus-per-node" => {
                o.gpus_per_node = num(next_value(&mut args, "--gpus-per-node"), "--gpus-per-node")
            }
            "--syn" => o.syn = num(next_value(&mut args, "--syn"), "--syn"),
            "--nt" => o.nt = num(next_value(&mut args, "--nt"), "--nt"),
            "--beta" => o.beta = num(next_value(&mut args, "--beta"), "--beta"),
            "--order" => {
                o.order = match next_value(&mut args, "--order").as_str() {
                    "linear" => IpOrder::Linear,
                    "cubic" => IpOrder::Cubic,
                    other => {
                        eprintln!("unknown interpolation order {other}");
                        usage()
                    }
                }
            }
            "--precond" => {
                o.precond = match next_value(&mut args, "--precond").as_str() {
                    "InvA" => PrecondKind::InvA,
                    "InvH0" => PrecondKind::InvH0,
                    "2LInvH0" => PrecondKind::TwoLevelInvH0,
                    other => {
                        eprintln!("unknown preconditioner {other}");
                        usage()
                    }
                }
            }
            "--max-gn" => o.max_gn = num(next_value(&mut args, "--max-gn"), "--max-gn"),
            "--fixed-pcg" => o.fixed_pcg = num(next_value(&mut args, "--fixed-pcg"), "--fixed-pcg"),
            "--timeout" if !worker => {
                o.timeout_secs = num(next_value(&mut args, "--timeout"), "--timeout")
            }
            "--report" if !worker => {
                o.report = Some(PathBuf::from(next_value(&mut args, "--report")))
            }
            "--in-process" if !worker => o.in_process = true,
            "--dir" if worker => o.dir = Some(PathBuf::from(next_value(&mut args, "--dir"))),
            "--rank" if worker => o.rank = Some(num(next_value(&mut args, "--rank"), "--rank")),
            "-q" => o.quiet = true,
            "-h" | "--help" => usage(),
            other => {
                eprintln!("unknown launch option {other}");
                usage()
            }
        }
    }
    if o.ranks == 0 {
        eprintln!("--ranks is required (>= 1)");
        usage()
    }
    if o.syn < 2 {
        eprintln!("--syn is required (grid needs >= 2 points per dim)");
        usage()
    }
    if worker && (o.dir.is_none() || o.rank.is_none()) {
        eprintln!("worker-rank needs --dir and --rank");
        usage()
    }
    o
}

/// The deterministic launch-mode solver configuration: β-continuation off
/// and a fixed PCG iteration count, so the GN trajectory is a pure function
/// of the problem — identical across the process and in-process paths.
fn launch_cfg(o: &LaunchOpts) -> RegistrationConfig {
    RegistrationConfig::builder()
        .nt(o.nt)
        .beta(o.beta)
        .ip_order(o.order)
        .precond(o.precond)
        .continuation(false)
        .max_gn_iter(o.max_gn)
        .fixed_pcg(Some(o.fixed_pcg))
        .verbose(false)
        .build()
        .unwrap_or_else(|e| fail(&e))
}

fn precond_name(pc: PrecondKind) -> &'static str {
    match pc {
        PrecondKind::InvA => "InvA",
        PrecondKind::InvH0 => "InvH0",
        PrecondKind::TwoLevelInvH0 => "2LInvH0",
    }
}

fn launch_main(args: Vec<String>) {
    let o = parse_launch_args(args, false);
    if o.in_process {
        return launch_in_process(&o);
    }
    let exe = std::env::current_exe().unwrap_or_else(|e| {
        fail(&ClaireError::Io { context: "current_exe", message: e.to_string() })
    });
    let worker_args: Vec<String> = [
        "--syn",
        &o.syn.to_string(),
        "--nt",
        &o.nt.to_string(),
        "--beta",
        &format!("{:e}", o.beta),
        "--order",
        if o.order == IpOrder::Cubic { "cubic" } else { "linear" },
        "--precond",
        precond_name(o.precond),
        "--max-gn",
        &o.max_gn.to_string(),
        "--fixed-pcg",
        &o.fixed_pcg.to_string(),
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let mut spec = LaunchSpec::new(exe, o.ranks, o.gpus_per_node, worker_args);
    spec.timeout = Duration::from_secs(o.timeout_secs);
    let outcome = claire::ipc::launch(&spec).unwrap_or_else(|e| fail(&e));
    let rank0 = outcome.reports.into_iter().next().unwrap_or_default();
    finish_launch(&o, rank0, "socket");
}

/// `--in-process`: the identical solve on the threads-as-ranks virtual
/// cluster, as a reference for the multi-process path.
///
/// Observability state is process-global, so with p ranks in one process
/// every rank's GN records land in one ledger and the objective/Hessian
/// counters are p-fold. Normalize both back to per-rank form so the report
/// diffs cleanly against a real rank process's.
fn launch_in_process(o: &LaunchOpts) {
    let topo = Topology::new(o.ranks, o.gpus_per_node);
    let cfg = launch_cfg(o);
    let syn = o.syn;
    observe::begin();
    let result = claire::mpi::try_run_cluster(topo, |comm| {
        let prob = claire::data::syn::syn_problem([syn; 3], comm);
        let mut solver = Claire::new(cfg);
        let (_v, report) =
            solver.register_from(&prob.template, &prob.reference, None, "launch", comm);
        // Mirror the worker's pre-collection barrier so both transports
        // ledger identical collective counts.
        comm.barrier();
        if comm.rank() == 0 {
            Some(observe::collect_run_report("launch", &report, comm))
        } else {
            None
        }
    });
    claire::obs::set_enabled(false);
    let outputs = match result {
        Ok(res) => res.outputs,
        Err(e) => fail(&ClaireError::from(e)),
    };
    let mut run = outputs.into_iter().flatten().next().unwrap_or_else(|| {
        fail(&ClaireError::RankFailed { rank: 0, message: "no rank-0 report".into() })
    });
    normalize_threads_report(&mut run, o.ranks);
    finish_launch(o, run.to_json(), "channel");
}

/// Undo the artifacts of running p ranks inside one process (see
/// [`launch_in_process`]): keep the first copy of each GN record and divide
/// the process-global counters by the rank count.
fn normalize_threads_report(run: &mut RunReport, ranks: usize) {
    let mut seen = std::collections::HashSet::new();
    run.gn_trace.retain(|r| seen.insert((r.level, r.beta.to_bits(), r.iter)));
    run.summary.obj_evals /= ranks;
    run.summary.hess_applies /= ranks;
}

/// Write/print the rank-0 report on the launcher side.
fn finish_launch(o: &LaunchOpts, json: String, transport: &str) {
    if let Some(path) = &o.report {
        write_text(path, &json);
    }
    if !o.quiet {
        let parsed = serde_json::from_str(&json).ok();
        let summary = parsed.as_ref().and_then(|v| field(v, "summary"));
        let gn = summary.and_then(|s| field_u64(s, "gn_iters")).unwrap_or(0);
        let mm = summary.and_then(|s| field_f64(s, "rel_mismatch")).unwrap_or(f64::NAN);
        eprintln!("launch: {} ranks ({transport}): {gn} GN iters, mismatch {mm:.3e}", o.ranks);
        if let Some(path) = &o.report {
            eprintln!("rank-0 RunReport written to {}", path.display());
        }
    }
}

/// Hidden subcommand: one rank process of a `claire-cli launch` cluster.
/// Bootstraps the socket mesh in the launcher's rendezvous directory, runs
/// the solve, and sends the RunReport (or an in-band failure) back over
/// `launch.sock` before exiting.
fn worker_rank_main(args: Vec<String>) {
    let o = parse_launch_args(args, true);
    let (dir, rank) = (o.dir.clone().unwrap(), o.rank.unwrap());
    let topo = Topology::new(o.ranks, o.gpus_per_node);
    let transport = match SocketTransport::bootstrap(&dir, rank, topo, SocketOpts::default()) {
        Ok(t) => t,
        Err(e) => {
            let _ = claire::ipc::launch::send_failure(&dir, rank, e.to_string());
            fail(&e)
        }
    };
    let mut comm = Comm::from_transport(Box::new(transport), LinkModel::default());
    observe::begin();

    // The default panic hook prints an opaque "Box<dyn Any>" line for
    // `panic_any(TransportError)`; silence just that case — the catch
    // around the solve below turns it into a proper in-band report.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        if info.payload().downcast_ref::<TransportError>().is_none() {
            default_hook(info);
        }
    }));

    let mut hooks = SolverHooks::default();
    if let Ok(v) = std::env::var("CLAIRE_IPC_TEST_DIE_RANK") {
        // Failure-path test hook (proc-smoke): this rank dies mid-solve so
        // the launcher's dead-rank detection can be exercised end to end.
        if v.parse::<usize>() == Ok(rank) {
            hooks.on_gn_iter = Some(std::sync::Arc::new(|_| std::process::exit(101)));
        }
    }

    let prob = claire::data::syn::syn_problem([o.syn; 3], &mut comm);
    let mut solver = Claire::with_hooks(launch_cfg(&o), hooks);
    // Transport failures surface as panics carrying a `TransportError` (the
    // same mechanism the virtual cluster uses); catch them so a rank that
    // merely *observed* a peer die reports the culprit in-band and exits 0
    // instead of panicking — the launcher then attributes the failure to the
    // rank that actually died, never to a bystander.
    let solve = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        solver.try_register_from(&prob.template, &prob.reference, None, "launch", &mut comm)
    }));
    match solve {
        Ok(Ok((_v, report))) => {
            // Barrier before collecting so every rank ledgers the same
            // collective counts (mirrored by the in-process path).
            comm.barrier();
            let run = observe::collect_run_report("launch", &report, &comm);
            claire::obs::set_enabled(false);
            claire::ipc::launch::send_report(&dir, rank, run.to_json())
                .unwrap_or_else(|e| fail(&e));
        }
        Ok(Err(e)) => {
            let _ = claire::ipc::launch::send_failure(&dir, rank, e.to_string());
            fail(&e)
        }
        Err(payload) => {
            let (culprit, message) = match payload.downcast_ref::<TransportError>() {
                Some(TransportError::PeerLost { peer, detail }) => {
                    (*peer, format!("lost mid-solve: {detail}"))
                }
                Some(e) => (rank, e.to_string()),
                None => (rank, describe_worker_panic(payload.as_ref())),
            };
            let _ = claire::ipc::launch::send_failure(&dir, culprit, message.clone());
            if culprit == rank {
                fail(&ClaireError::RankFailed { rank, message })
            }
            // A bystander: the culprit's own exit (or our Failure frame)
            // already tells the launcher what happened; leave quietly.
            exit(0)
        }
    }
}

fn describe_worker_panic(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("panicked: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("panicked: {s}")
    } else {
        "panicked".into()
    }
}
