//! `claire-cli` — register two NIfTI volumes from the command line.
//!
//! ```bash
//! claire-cli <template.nii> <reference.nii> [options]
//!
//! options:
//!   -o DIR           output directory (default: claire_out)
//!   --precond NAME   InvA | InvH0 | 2LInvH0          (default: 2LInvH0)
//!   --beta VALUE     target regularization parameter (default: 5e-4)
//!   --nt N           semi-Lagrangian time steps      (default: 4)
//!   --order KIND     linear | cubic                  (default: cubic)
//!   --grid-cont      enable coarse-to-fine grid continuation
//!   --store-grad     cache the state gradient (faster, more memory)
//!   --eps-h0 VALUE   inner H0 tolerance scale        (default: 1e-3)
//!   --report PATH    write a unified RunReport JSON (spans, metrics,
//!                    per-phase timings, per-collective traffic) to PATH
//!                    and print the span-tree summary on exit
//!   --syn N          skip the NIfTI inputs and register the synthetic
//!                    N³ sinusoidal problem (smoke tests, CI)
//!   -q               quiet (no per-iteration log)
//! ```
//!
//! Writes `deformed_template.nii`, `velocity_[123].nii`, `jacobian_det.nii`
//! and `report.json` to the output directory.

use claire::core::{observe, Claire, PrecondKind, RegistrationConfig};
use claire::data::nifti;
use claire::interp::{Interpolator, IpOrder};
use claire::mpi::Comm;
use claire::semilag::{displacement, Trajectory};
use std::path::{Path, PathBuf};
use std::process::exit;

struct Options {
    template: PathBuf,
    reference: PathBuf,
    out: PathBuf,
    report: Option<PathBuf>,
    syn: Option<usize>,
    cfg: RegistrationConfig,
}

fn usage() -> ! {
    eprintln!(
        "usage: claire-cli <template.nii> <reference.nii> [-o DIR] [--precond InvA|InvH0|2LInvH0]"
    );
    eprintln!(
        "                  [--beta V] [--nt N] [--order linear|cubic] [--grid-cont] [--store-grad]"
    );
    eprintln!("                  [--eps-h0 V] [--report PATH] [--syn N] [-q]");
    exit(2)
}

fn parse_args() -> Options {
    let mut args = std::env::args().skip(1);
    let mut positional: Vec<String> = Vec::new();
    let mut out = PathBuf::from("claire_out");
    let mut report = None;
    let mut syn = None;
    let mut cfg = RegistrationConfig::builder().ip_order(IpOrder::Cubic).verbose(true);
    let next_value = |args: &mut dyn Iterator<Item = String>, flag: &str| -> String {
        args.next().unwrap_or_else(|| {
            eprintln!("missing value for {flag}");
            usage()
        })
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "-o" => out = PathBuf::from(next_value(&mut args, "-o")),
            "--precond" => {
                cfg = cfg.precond(match next_value(&mut args, "--precond").as_str() {
                    "InvA" => PrecondKind::InvA,
                    "InvH0" => PrecondKind::InvH0,
                    "2LInvH0" => PrecondKind::TwoLevelInvH0,
                    other => {
                        eprintln!("unknown preconditioner {other}");
                        usage()
                    }
                })
            }
            "--beta" => {
                cfg = cfg.beta(next_value(&mut args, "--beta").parse().unwrap_or_else(|_| usage()))
            }
            "--nt" => {
                cfg = cfg.nt(next_value(&mut args, "--nt").parse().unwrap_or_else(|_| usage()))
            }
            "--order" => {
                cfg = cfg.ip_order(match next_value(&mut args, "--order").as_str() {
                    "linear" => IpOrder::Linear,
                    "cubic" => IpOrder::Cubic,
                    other => {
                        eprintln!("unknown interpolation order {other}");
                        usage()
                    }
                })
            }
            "--grid-cont" => cfg = cfg.grid_continuation(true),
            "--store-grad" => cfg = cfg.store_grad(true),
            "--eps-h0" => {
                cfg = cfg
                    .eps_h0(next_value(&mut args, "--eps-h0").parse().unwrap_or_else(|_| usage()))
            }
            "--report" => report = Some(PathBuf::from(next_value(&mut args, "--report"))),
            "--syn" => {
                syn = Some(next_value(&mut args, "--syn").parse().unwrap_or_else(|_| usage()))
            }
            "-q" => cfg = cfg.verbose(false),
            "-h" | "--help" => usage(),
            other if other.starts_with('-') => {
                eprintln!("unknown option {other}");
                usage()
            }
            other => positional.push(other.to_string()),
        }
    }
    match (syn.is_some(), positional.len()) {
        (true, 0) | (false, 2) => {}
        _ => usage(),
    }
    let cfg = cfg.build().unwrap_or_else(|e| {
        eprintln!("{e}");
        exit(2)
    });
    let get = |i: usize| positional.get(i).map(PathBuf::from).unwrap_or_default();
    Options { template: get(0), reference: get(1), out, report, syn, cfg }
}

fn load(path: &Path) -> claire::grid::ScalarField {
    nifti::read(path).unwrap_or_else(|e| {
        eprintln!("cannot read {}: {e}", path.display());
        exit(1)
    })
}

fn main() {
    let opts = parse_args();
    let mut comm = Comm::solo();

    let (m0, m1) = match opts.syn {
        Some(n) => {
            let prob = claire::data::syn::syn_problem([n, n, n], &mut comm);
            (prob.template, prob.reference)
        }
        None => {
            let m0 = load(&opts.template);
            let m1 = load(&opts.reference);
            if m0.layout().grid != m1.layout().grid {
                eprintln!(
                    "grid mismatch: template {:?} vs reference {:?}",
                    m0.layout().grid.n,
                    m1.layout().grid.n
                );
                exit(1);
            }
            (m0, m1)
        }
    };
    let label = match opts.syn {
        Some(_) => "syn".to_string(),
        None => format!("{} -> {}", opts.template.display(), opts.reference.display()),
    };
    eprintln!(
        "registering {} at {:?} with {} (β -> {:.1e})",
        label,
        m0.layout().grid.n,
        opts.cfg.precond.label(),
        opts.cfg.beta_target
    );

    let cfg = opts.cfg;
    if opts.report.is_some() {
        observe::begin();
    }
    let mut solver = Claire::new(cfg);
    let t0 = std::time::Instant::now();
    let (v, report) = solver.register_from(&m0, &m1, None, "cli", &mut comm);
    eprintln!(
        "done in {:.1}s: mismatch {:.3e}, GN {}, PCG {}, det(∇y) ∈ [{:.3}, {:.3}]",
        t0.elapsed().as_secs_f64(),
        report.rel_mismatch,
        report.gn_iters,
        report.pcg_iters,
        report.jac_det_min,
        report.jac_det_max
    );

    if let Some(path) = &opts.report {
        let run = observe::collect_run_report("cli", &report, &comm);
        eprint!("{}", run.span_summary());
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            std::fs::create_dir_all(dir).unwrap_or_else(|e| {
                eprintln!("cannot create {}: {e}", dir.display());
                exit(1)
            });
        }
        std::fs::write(path, run.to_json()).unwrap_or_else(|e| {
            eprintln!("cannot write {}: {e}", path.display());
            exit(1)
        });
        eprintln!("wrote run report to {}", path.display());
    }

    std::fs::create_dir_all(&opts.out).unwrap_or_else(|e| {
        eprintln!("cannot create {}: {e}", opts.out.display());
        exit(1)
    });
    // deformed template
    let mut problem = claire::core::RegProblem::new(m0.clone(), m1.clone(), cfg, &mut comm)
        .expect("matching layouts by construction");
    let deformed = problem.deformed_template(&v, &mut comm);
    nifti::write(&opts.out.join("deformed_template.nii"), &deformed).expect("write deformed");
    // velocity components
    for (d, comp) in v.c.iter().enumerate() {
        nifti::write(&opts.out.join(format!("velocity_{}.nii", d + 1)), comp)
            .expect("write velocity");
    }
    // Jacobian determinant map
    let mut ip = Interpolator::new(cfg.ip_order);
    let traj = Trajectory::compute(&v, cfg.nt, &mut ip, &mut comm);
    let u = displacement::displacement(&traj, cfg.nt, &mut ip, &mut comm);
    let det = displacement::jacobian_det(&u, &mut comm);
    nifti::write(&opts.out.join("jacobian_det.nii"), &det).expect("write det");
    // machine-readable report
    std::fs::write(
        opts.out.join("report.json"),
        serde_json::to_string_pretty(&report).expect("serialize report"),
    )
    .expect("write report");
    eprintln!("wrote results to {}", opts.out.display());
}
