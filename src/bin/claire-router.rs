//! `claire-router` — shard claire-serve submissions across worker servers.
//!
//! ```bash
//! claire-router --listen ADDR --worker ADDR [--worker ADDR ...] [-q]
//! ```
//!
//! Listens on `--listen` speaking the ordinary claire-serve wire protocol
//! and forwards every request to one of the `--worker` servers, placing
//! submissions by consistent-hashing their solver fingerprint (grid +
//! solver config): jobs that could coalesce into one batch land on the
//! same worker, so worker-local batch scheduling keeps finding peers.
//! Identity fields (label, tenant, priority) never move a job.
//!
//! A worker that stops answering (transport error after one reconnect
//! attempt) is marked dead; its in-flight jobs are re-submitted to the
//! next alive worker on the ring when their results are claimed, and new
//! work routes around it. Because the router speaks the same protocol on
//! both sides, `claire-cli submit --addr <router>` works unchanged — and
//! routers can front other routers.
//!
//! Exit codes: 0 clean shutdown, 2 usage, 6 bind failure.

use std::io;
use std::net::{TcpListener, TcpStream};
use std::process::exit;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use claire::serve::wire::{
    decode_request, read_frame, send, ErrorCode, Request, Response, WireError, MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
};
use claire::serve::{JobStatus, Router, StreamEvent};

fn usage() -> ! {
    eprintln!("usage: claire-router --listen ADDR --worker ADDR [--worker ADDR ...] [-q]");
    exit(2)
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut listen: Option<String> = None;
    let mut workers: Vec<String> = Vec::new();
    let mut quiet = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--listen" => listen = args.next().or_else(|| usage()),
            "--worker" => workers.push(args.next().unwrap_or_else(|| usage())),
            "-q" => quiet = true,
            "-h" | "--help" => usage(),
            other => {
                eprintln!("unknown option {other}");
                usage()
            }
        }
    }
    let listen = listen.unwrap_or_else(|| usage());
    if workers.is_empty() {
        usage()
    }

    let router = Arc::new(Router::new(&workers).unwrap_or_else(|e| {
        eprintln!("claire-router: {e}");
        exit(2)
    }));
    let listener = TcpListener::bind(&listen[..]).unwrap_or_else(|e| {
        eprintln!("claire-router: cannot bind {listen}: {e}");
        exit(6)
    });
    let local = listener.local_addr().expect("bound listener has an address");
    println!("claire-router listening on {local} over {} worker(s)", workers.len());
    use io::Write as _;
    io::stdout().flush().ok();
    if !quiet {
        for w in router.backend_addrs() {
            eprintln!("  worker {w}");
        }
    }

    for stream in listener.incoming() {
        match stream {
            Ok(conn) => {
                let router = Arc::clone(&router);
                thread::spawn(move || {
                    let _ = serve_connection(conn, &router);
                });
            }
            Err(_) => thread::sleep(Duration::from_millis(20)),
        }
    }
}

/// Serve one client connection: handshake, then proxy the envelope onto
/// the router's sharded backends.
fn serve_connection(mut stream: TcpStream, router: &Router) -> Result<(), WireError> {
    stream.set_nodelay(true).ok();
    // Handshake mirrors claire-serve: first frame must be a version-matched
    // Hello.
    let bytes = read_frame(&mut stream, MAX_FRAME_BYTES)?;
    match decode_request(&bytes) {
        Ok(Request::Hello { protocol, .. }) if protocol == PROTOCOL_VERSION => {
            send(
                &mut stream,
                &Response::Hello { protocol: PROTOCOL_VERSION, server: "claire-router".into() },
            )?;
        }
        Ok(Request::Hello { protocol, .. }) => {
            send(
                &mut stream,
                &Response::Error {
                    code: ErrorCode::VersionMismatch,
                    message: format!(
                        "router speaks protocol {PROTOCOL_VERSION}, client sent {protocol}"
                    ),
                },
            )?;
            return Err(WireError::VersionMismatch { ours: PROTOCOL_VERSION, theirs: protocol });
        }
        _ => {
            send(
                &mut stream,
                &Response::Error {
                    code: ErrorCode::Unsupported,
                    message: "first frame must be Hello".into(),
                },
            )?;
            return Err(WireError::Protocol("first frame must be Hello".into()));
        }
    }

    loop {
        let bytes = match read_frame(&mut stream, MAX_FRAME_BYTES) {
            Ok(b) => b,
            Err(WireError::Closed) => return Ok(()),
            Err(e) => return Err(e),
        };
        let req = match decode_request(&bytes) {
            Ok(r) => r,
            Err(e) => {
                send(
                    &mut stream,
                    &Response::Error { code: ErrorCode::Malformed, message: e.to_string() },
                )?;
                continue;
            }
        };
        match req {
            Request::Hello { .. } => send(
                &mut stream,
                &Response::Hello { protocol: PROTOCOL_VERSION, server: "claire-router".into() },
            )?,
            Request::Submit { spec } => match router.submit(&spec) {
                Ok(adm) => {
                    send(&mut stream, &Response::Submitted { id: adm.id, cached: adm.cached })?
                }
                Err(e) => send(&mut stream, &refusal(e))?,
            },
            Request::Status { id } => match router.status(id) {
                Ok(status) => send(&mut stream, &Response::Status { id, status })?,
                Err(e) => send(&mut stream, &refusal(e))?,
            },
            Request::Cancel { id } => match router.cancel(id) {
                Ok(delivered) => send(&mut stream, &Response::Cancelled { id, delivered })?,
                Err(e) => send(&mut stream, &refusal(e))?,
            },
            Request::Result { id } => match router.wait(id) {
                Ok(result) => send(&mut stream, &Response::Result { result })?,
                Err(e) => send(&mut stream, &refusal(e))?,
            },
            Request::Stream { id } => {
                // The router does not hold worker stream subscriptions open;
                // it synthesizes a coarse stream by polling the shard.
                match poll_stream(&mut stream, router, id) {
                    Ok(()) => {}
                    Err(e) => send(&mut stream, &refusal(e))?,
                }
            }
            _ => send(
                &mut stream,
                &Response::Error {
                    code: ErrorCode::Unsupported,
                    message: "request not supported by claire-router".into(),
                },
            )?,
        }
    }
}

/// Coarse status stream: `Queued` → `Running` → `Terminal`, polled from
/// the backend at 100 ms. Per-iteration events stay a direct-worker
/// feature; the router's job is placement, not fan-in.
fn poll_stream(
    stream: &mut TcpStream,
    router: &Router,
    id: claire::serve::JobId,
) -> Result<(), WireError> {
    send(stream, &Response::Event { id, event: StreamEvent::Queued })?;
    let mut sent_running = false;
    loop {
        let status = router.status(id)?;
        if !sent_running && status != JobStatus::Queued {
            sent_running = true;
            send(stream, &Response::Event { id, event: StreamEvent::Running })?;
        }
        if status.is_terminal() {
            return send(stream, &Response::Event { id, event: StreamEvent::Terminal { status } });
        }
        thread::sleep(Duration::from_millis(100));
    }
}

fn refusal(e: WireError) -> Response {
    let code = match &e {
        WireError::Remote { code, .. } => *code,
        _ => ErrorCode::Internal,
    };
    Response::Error { code, message: e.to_string() }
}
