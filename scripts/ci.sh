#!/usr/bin/env bash
# CI gate, organized as named stages with per-stage wall-clock timing.
#
#   scripts/ci.sh            full gate: build, tests, lints, formatting,
#                            bench smoke-runs + perf-regression check
#                            against results/baselines/, report-schema
#                            validation, serve load smoke-run
#   scripts/ci.sh --quick    inner-loop gate: build + tier-1 tests + clippy
#
# The perf gate diffs fresh BENCH_kernels.json / BENCH_solver.json /
# BENCH_batch.json against the committed baselines under results/baselines/
# with check_bench (>30% regression on any stable threads==1 row fails —
# ns/grid-point up, or batched pairs/sec down; any increase in allocations
# per GN iteration fails). Missing baselines are seeded from the fresh
# run — commit them to arm the gate.
set -euo pipefail
cd "$(dirname "$0")/.."

QUICK=0
for arg in "$@"; do
    case "$arg" in
        --quick) QUICK=1 ;;
        *) echo "usage: scripts/ci.sh [--quick]" >&2; exit 2 ;;
    esac
done

STAGE_NAMES=()
STAGE_SECS=()
stage() {
    local name="$1"; shift
    echo "== $name =="
    local t0=$SECONDS
    "$@"
    local dt=$((SECONDS - t0))
    STAGE_NAMES+=("$name")
    STAGE_SECS+=("$dt")
    echo "-- $name: ${dt}s"
}

stage_build() {
    cargo build --release --workspace
}

stage_tier1_tests() {
    # the SIMD dispatch makes backend choice part of the tested surface:
    # run the tier-1 suite once on the portable scalar path and once with
    # runtime feature detection (AVX2 where the host supports it)
    CLAIRE_SIMD=scalar cargo test -q --release
    CLAIRE_SIMD=auto cargo test -q --release
}

stage_workspace_tests() {
    cargo test -q --release --workspace
}

stage_clippy() {
    cargo clippy --workspace --all-targets -- -D warnings
}

stage_fmt() {
    cargo fmt --all --check
}

stage_bench_kernels() {
    local fresh
    fresh="$(mktemp -d)/BENCH_kernels.json"
    cargo run --release -p claire-bench --bin bench_kernels -- "$fresh"
    # micro-kernel rows are sub-µs measurements: same-binary spread on a
    # noisy host reaches ~1.7x, so this stage gets headroom beyond the
    # default 30% (the longer solver/batch measurements keep the default)
    cargo run --release -p claire-bench --bin check_bench -- \
        "$fresh" results/baselines/BENCH_kernels.json --threshold 0.60
    cp "$fresh" BENCH_kernels.json   # refresh the repo-root snapshot
    rm -f "$fresh"
}

stage_bench_solver() {
    local fresh
    fresh="$(mktemp -d)/BENCH_solver.json"
    cargo run --release -p claire-bench --bin bench_solver -- "$fresh"
    cargo run --release -p claire-bench --bin check_bench -- \
        "$fresh" results/baselines/BENCH_solver.json
    cp "$fresh" BENCH_solver.json    # refresh the repo-root snapshot
    rm -f "$fresh"
}

stage_bench_batch() {
    local fresh
    fresh="$(mktemp -d)/BENCH_batch.json"
    cargo run --release -p claire-bench --bin bench_batch -- "$fresh"
    cargo run --release -p claire-bench --bin check_bench -- \
        "$fresh" results/baselines/BENCH_batch.json
    cp "$fresh" BENCH_batch.json     # refresh the repo-root snapshot
    rm -f "$fresh"
}

stage_report_schema() {
    local report
    report="$(mktemp -d)/run.json"
    cargo run --release --example quickstart -- 16 --report "$report"
    echo "validating RunReport schema keys in $report"
    for key in label grid nranks nt precond backend summary scheduling phases gn_trace \
               kernels comm collectives metrics memory spans; do
        grep -q "\"$key\"" "$report" || { echo "RunReport missing key: $key"; exit 1; }
    done
    grep -q '"name": "solve"' "$report" || { echo "RunReport span tree missing solve root"; exit 1; }
    rm -f "$report"
}

stage_bench_serve() {
    local serve_json
    serve_json="$(mktemp -d)/BENCH_serve.json"
    cargo run --release -p claire-bench --bin bench_serve -- "$serve_json" --smoke
    echo "validating BENCH_serve schema keys in $serve_json"
    for key in host_threads smoke calibration_run_secs levels overload batching \
               workers queue_capacity offered_rate_hz submitted completed rejected \
               throughput_jobs_per_s p50_ms p95_ms p99_ms accepted \
               seq_jobs_per_s batched_jobs_per_s batching_speedup largest_batch; do
        grep -q "\"$key\"" "$serve_json" || { echo "BENCH_serve missing key: $key"; exit 1; }
    done
    rm -f "$serve_json"
}

stage build stage_build
stage "tier-1 tests (root package)" stage_tier1_tests
stage "clippy (deny warnings)" stage_clippy
if [ "$QUICK" -eq 0 ]; then
    stage "full workspace tests" stage_workspace_tests
    stage "rustfmt check" stage_fmt
    stage "kernel bench + perf gate" stage_bench_kernels
    stage "solver bench + perf gate" stage_bench_solver
    stage "batch bench + perf gate" stage_bench_batch
    stage "RunReport schema smoke-run" stage_report_schema
    stage "serve bench smoke-run" stage_bench_serve
fi

echo
echo "stage timings:"
for i in "${!STAGE_NAMES[@]}"; do
    printf '  %-32s %4ss\n' "${STAGE_NAMES[$i]}" "${STAGE_SECS[$i]}"
done
if [ "$QUICK" -eq 1 ]; then
    echo "CI gate passed (--quick: build + tier-1 tests + clippy)."
else
    echo "CI gate passed."
fi
