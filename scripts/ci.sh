#!/usr/bin/env bash
# CI gate, organized as named stages with per-stage wall-clock timing.
#
#   scripts/ci.sh             full gate: build, tests, lints, formatting,
#                             bench smoke-runs + perf-regression check
#                             against results/baselines/, report-schema
#                             validation, serve load smoke-run, multi-process
#                             launch smoke-run
#   scripts/ci.sh --quick     inner-loop gate: build + tier-1 tests + clippy
#                             (skips benches AND the net/proc smoke stages)
#   scripts/ci.sh --no-smoke  full gate minus the net/proc smoke stages
#
# When CLAIRE_SIMD is set in the environment (the CI backend matrix exports
# scalar | auto | portable), the tier-1 stage runs once under that backend;
# otherwise it sweeps all three. The full gate additionally runs the tier-1
# suite once under CLAIRE_PRECISION=mixed × CLAIRE_SIMD=auto — the f32
# inner-solve lane — and checks that the RunReport `"precision"` key
# follows the environment selector.
#
# The perf gate diffs fresh BENCH_kernels.json / BENCH_solver.json /
# BENCH_batch.json / BENCH_serve.json against the committed baselines under
# results/baselines/
# with check_bench (>30% regression on any stable threads==1 row fails —
# ns/grid-point up, batched pairs/sec down, or roofline %-of-peak down; any
# increase in allocations per GN iteration fails). Missing baselines are
# seeded from the fresh run — commit them to arm the gate.
#
# Per-stage wall-clock timings are written to ci_stages.json in the repo
# root (also on failure, via the EXIT trap) so CI can upload them as an
# artifact next to the BENCH_*.json snapshots.
set -euo pipefail
cd "$(dirname "$0")/.."

QUICK=0
RUN_SMOKE=1
STAGE_ONLY=""
while [ "$#" -gt 0 ]; do
    case "$1" in
        --quick) QUICK=1; RUN_SMOKE=0 ;;
        --no-smoke) RUN_SMOKE=0 ;;
        # internal: run one stage function in a child shell (the retry
        # wrapper uses this so `timeout` can kill a hung stage cleanly)
        --stage) STAGE_ONLY="$2"; shift ;;
        *) echo "usage: scripts/ci.sh [--quick|--no-smoke]" >&2; exit 2 ;;
    esac
    shift
done

STAGE_NAMES=()
STAGE_SECS=()
stage() {
    local name="$1"; shift
    echo "== $name =="
    local t0=$SECONDS
    "$@"
    local dt=$((SECONDS - t0))
    STAGE_NAMES+=("$name")
    STAGE_SECS+=("$dt")
    echo "-- $name: ${dt}s"
}

# Write the per-stage timings collected so far as ci_stages.json. Runs on
# EXIT so a failed gate still leaves a (partial) timing artifact behind.
write_stage_timings() {
    {
        echo '{'
        echo "  \"quick\": $([ "$QUICK" -eq 1 ] && echo true || echo false),"
        echo '  "stages": ['
        local i last=$((${#STAGE_NAMES[@]} - 1))
        for i in "${!STAGE_NAMES[@]}"; do
            local comma=","
            [ "$i" -eq "$last" ] && comma=""
            printf '    {"name": "%s", "secs": %s}%s\n' \
                "${STAGE_NAMES[$i]}" "${STAGE_SECS[$i]}" "$comma"
        done
        echo '  ]'
        echo '}'
    } > ci_stages.json
}

# Re-run a stage function in a child shell with a hard timeout and bounded
# retries: a hung socket in the smoke stages gets SIGTERM from `timeout`
# (tripping the stage's own cleanup trap) instead of stalling the
# 60-minute job, and one transient flake does not fail the gate.
retry_stage() {
    local tries="$1" tmo="$2" fn="$3"
    local attempt rc
    for attempt in $(seq 1 "$tries"); do
        rc=0
        timeout "$tmo" bash "$0" --stage "$fn" || rc=$?
        [ "$rc" -eq 0 ] && return 0
        if [ "$attempt" -lt "$tries" ]; then
            echo "::warning::$fn failed (exit $rc, attempt $attempt/$tries); retrying"
        fi
    done
    echo "$fn failed after $tries attempt(s) (last exit $rc)" >&2
    return "$rc"
}

stage_build() {
    cargo build --release --workspace
}

stage_tier1_tests() {
    # the SIMD dispatch makes backend choice part of the tested surface.
    # Under the CI matrix one backend is pinned via the environment; a bare
    # run sweeps the scalar reference, the portable wide backend, and
    # runtime feature detection (AVX2 where the host supports it).
    if [ -n "${CLAIRE_SIMD:-}" ]; then
        echo "tier-1 backend pinned by environment: CLAIRE_SIMD=$CLAIRE_SIMD"
        cargo test -q --release
    else
        CLAIRE_SIMD=scalar cargo test -q --release
        CLAIRE_SIMD=portable cargo test -q --release
        CLAIRE_SIMD=auto cargo test -q --release
    fi
}

stage_tier1_mixed() {
    # mixed-precision lane: the entire tier-1 suite must hold with the f32
    # inner Krylov/FFT path selected by environment (`Default` picks up
    # CLAIRE_PRECISION, so every test that doesn't pin a width runs mixed)
    CLAIRE_PRECISION=mixed CLAIRE_SIMD=auto cargo test -q --release
}

stage_workspace_tests() {
    cargo test -q --release --workspace
}

stage_clippy() {
    cargo clippy --workspace --all-targets -- -D warnings
}

stage_fmt() {
    cargo fmt --all --check
}

stage_bench_kernels() {
    local fresh
    fresh="$(mktemp -d)/BENCH_kernels.json"
    cargo run --release -p claire-bench --bin bench_kernels -- "$fresh"
    # micro-kernel rows are sub-µs measurements: same-binary spread on a
    # noisy host reaches ~1.7x, so this stage gets headroom beyond the
    # default 30% (the longer solver/batch measurements keep the default)
    cargo run --release -p claire-bench --bin check_bench -- \
        "$fresh" results/baselines/BENCH_kernels.json --threshold 0.60
    cp "$fresh" BENCH_kernels.json   # refresh the repo-root snapshot
    rm -f "$fresh"
}

stage_bench_solver() {
    local fresh
    fresh="$(mktemp -d)/BENCH_solver.json"
    cargo run --release -p claire-bench --bin bench_solver -- "$fresh"
    cargo run --release -p claire-bench --bin check_bench -- \
        "$fresh" results/baselines/BENCH_solver.json
    cp "$fresh" BENCH_solver.json    # refresh the repo-root snapshot
    rm -f "$fresh"
}

stage_bench_batch() {
    local fresh
    fresh="$(mktemp -d)/BENCH_batch.json"
    cargo run --release -p claire-bench --bin bench_batch -- "$fresh"
    cargo run --release -p claire-bench --bin check_bench -- \
        "$fresh" results/baselines/BENCH_batch.json
    cp "$fresh" BENCH_batch.json     # refresh the repo-root snapshot
    rm -f "$fresh"
}

stage_report_schema() {
    local report
    report="$(mktemp -d)/run.json"
    cargo run --release --example quickstart -- 16 --report "$report"
    echo "validating RunReport schema keys in $report"
    for key in label grid nranks nt precond backend transport precision summary scheduling \
               phases gn_trace kernels comm collectives metrics memory roofline spans; do
        grep -q "\"$key\"" "$report" || { echo "RunReport missing key: $key"; exit 1; }
    done
    grep -q '"precision": "f64"' "$report" || {
        echo "RunReport precision should default to f64"; exit 1; }
    grep -q '"dram_peak_bps"' "$report" || {
        echo "RunReport roofline block missing dram_peak_bps"; exit 1; }
    grep -q '"name": "solve"' "$report" || { echo "RunReport span tree missing solve root"; exit 1; }
    # the environment selector must land in the report verbatim
    CLAIRE_PRECISION=mixed cargo run --release --example quickstart -- 16 --report "$report"
    grep -q '"precision": "mixed"' "$report" || {
        echo "RunReport precision should follow CLAIRE_PRECISION=mixed"; exit 1; }
    rm -f "$report"
}

stage_bench_serve() {
    local serve_json
    serve_json="$(mktemp -d)/BENCH_serve.json"
    cargo run --release -p claire-bench --bin bench_serve -- "$serve_json" --smoke
    echo "validating BENCH_serve schema keys in $serve_json"
    for key in host_threads smoke calibration_run_secs levels overload batching \
               workers queue_capacity offered_rate_hz submitted completed rejected \
               throughput_jobs_per_s p50_ms p95_ms p99_ms accepted \
               seq_jobs_per_s batched_jobs_per_s batching_speedup largest_batch \
               results serve_net_e2e serve_net_cache_hit pairs_per_sec cache_hits; do
        grep -q "\"$key\"" "$serve_json" || { echo "BENCH_serve missing key: $key"; exit 1; }
    done
    # networked rows are end-to-end measurements over loopback TCP on a
    # shared host: give them the same headroom as the micro-kernel rows
    cargo run --release -p claire-bench --bin check_bench -- \
        "$serve_json" results/baselines/BENCH_serve.json --threshold 0.60
    cp "$serve_json" BENCH_serve.json   # refresh the repo-root snapshot
    rm -f "$serve_json"
}

stage_net_smoke() {
    # Boot two claire-serve workers and a claire-router on loopback, push a
    # manifest through `claire-cli submit --stream`, and validate the
    # streamed status schema end to end. Everything runs on ephemeral
    # ports scraped from the servers' stdout.
    local dir; dir="$(mktemp -d)"
    local manifest="$dir/manifest.json"
    cat > "$manifest" <<'EOF'
{"jobs": [
  {"label": "net-a", "syn": 8, "max_gn_iter": 2, "max_pcg_iter": 4,
   "continuation": false, "precond": "InvA"},
  {"label": "net-b", "syn": 8, "max_gn_iter": 2, "max_pcg_iter": 4,
   "continuation": false, "precond": "InvA"}
]}
EOF
    NET_PIDS=()
    cleanup_net() { for p in "${NET_PIDS[@]:-}"; do kill "$p" 2>/dev/null || true; done; }
    trap cleanup_net EXIT

    ./target/release/claire-cli serve --listen 127.0.0.1:0 --cache 8 -q > "$dir/w1.out" &
    NET_PIDS+=($!)
    ./target/release/claire-cli serve --listen 127.0.0.1:0 --cache 8 -q > "$dir/w2.out" &
    NET_PIDS+=($!)
    for i in $(seq 1 50); do
        grep -q "listening on" "$dir/w1.out" && grep -q "listening on" "$dir/w2.out" && break
        sleep 0.2
    done
    local w1 w2
    w1="$(sed -n 's/.*listening on //p' "$dir/w1.out" | head -1)"
    w2="$(sed -n 's/.*listening on //p' "$dir/w2.out" | head -1)"
    [ -n "$w1" ] && [ -n "$w2" ] || { echo "net smoke: workers did not come up"; exit 1; }

    ./target/release/claire-router --listen 127.0.0.1:0 \
        --worker "$w1" --worker "$w2" -q > "$dir/router.out" &
    NET_PIDS+=($!)
    for i in $(seq 1 50); do
        grep -q "listening on" "$dir/router.out" && break
        sleep 0.2
    done
    local router
    router="$(sed -n 's/.*listening on \([^ ]*\).*/\1/p' "$dir/router.out" | head -1)"
    [ -n "$router" ] || { echo "net smoke: router did not come up"; exit 1; }

    # readiness probe through the full handshake, against the router
    for i in $(seq 1 50); do
        if ./target/release/claire-cli submit --addr "$router" --ping -q 2>/dev/null; then
            break
        fi
        sleep 0.2
    done

    ./target/release/claire-cli submit --addr "$router" "$manifest" \
        -o "$dir/out" --stream -q > "$dir/stream.out"
    echo "validating streamed status schema in $dir/stream.out"
    for pat in '"type":"event"' '"event":"queued"' '"event":"running"' \
               '"event":"terminal"' '"status":"succeeded"'; do
        grep -q "$pat" "$dir/stream.out" || {
            echo "net smoke: streamed output missing $pat"; cat "$dir/stream.out"; exit 1; }
    done
    for job in net-a net-b; do
        [ -f "$dir/out/$job.json" ] || { echo "net smoke: missing report for $job"; exit 1; }
    done
    # a repeated identical submission must be answered from a worker's
    # result cache without another solve
    ./target/release/claire-cli submit --addr "$router" "$manifest" \
        -o "$dir/out2" 2> "$dir/second.err" > /dev/null
    grep -q "cache hit" "$dir/second.err" || {
        echo "net smoke: repeat submission was not served from the cache"
        cat "$dir/second.err"; exit 1; }

    cleanup_net
    trap - EXIT
    rm -rf "$dir"
    echo "net smoke: router + 2 workers served, streamed, and cached OK"
}

stage_proc_smoke() {
    # Boot a real 4-process rank cluster with `claire-cli launch` (each rank
    # its own OS process, Unix-domain-socket transport), validate the merged
    # RunReport, require its solve trajectory to match the same problem run
    # threads-as-ranks in one process, and check that a rank dying mid-solve
    # surfaces as a typed exit — not a hang.
    local dir; dir="$(mktemp -d)"
    ./target/release/claire-cli launch --ranks 4 --syn 16 --report "$dir/proc.json" -q
    echo "validating launch RunReport schema keys in $dir/proc.json"
    for key in label grid nranks nt precond backend transport precision summary scheduling \
               phases gn_trace kernels comm collectives metrics memory roofline spans; do
        grep -q "\"$key\"" "$dir/proc.json" || { echo "launch report missing key: $key"; exit 1; }
    done
    grep -q '"transport": "socket"' "$dir/proc.json" || {
        echo "proc smoke: launch report transport is not socket"; exit 1; }
    grep -q '"nranks": 4' "$dir/proc.json" || {
        echo "proc smoke: launch report nranks != 4"; exit 1; }

    # same problem, threads-as-ranks in one process: trajectories must agree
    ./target/release/claire-cli launch --ranks 4 --syn 16 --in-process \
        --report "$dir/thr.json" -q
    local pm tm
    pm="$(grep '"rel_mismatch"' "$dir/proc.json")"
    tm="$(grep '"rel_mismatch"' "$dir/thr.json")"
    [ -n "$pm" ] && [ "$pm" = "$tm" ] || {
        echo "proc smoke: mismatch diverges between transports: '$pm' vs '$tm'"; exit 1; }

    # rank-failure path: worker 1 exits mid-solve; the launcher must reap
    # the survivors and fail typed (exit 8) within the timeout
    local code=0
    CLAIRE_IPC_TEST_DIE_RANK=1 timeout 120 ./target/release/claire-cli launch \
        --ranks 3 --syn 16 -q 2> "$dir/fail.err" || code=$?
    [ "$code" -eq 8 ] || {
        echo "proc smoke: expected exit 8 for a dead rank, got $code"
        cat "$dir/fail.err"; exit 1; }
    grep -q "rank 1" "$dir/fail.err" || {
        echo "proc smoke: failure not attributed to rank 1"; cat "$dir/fail.err"; exit 1; }

    rm -rf "$dir"
    echo "proc smoke: 4-process launch, transport-equivalent report, typed rank failure OK"
}

# --stage <fn>: child-shell entry for retry_stage — run the one stage
# function and exit, with no timing trap (the parent owns ci_stages.json)
if [ -n "$STAGE_ONLY" ]; then
    case "$STAGE_ONLY" in
        stage_*) "$STAGE_ONLY"; exit 0 ;;
        *) echo "unknown stage: $STAGE_ONLY" >&2; exit 2 ;;
    esac
fi

trap write_stage_timings EXIT

stage build stage_build
stage "tier-1 tests (root package)" stage_tier1_tests
stage "clippy (deny warnings)" stage_clippy
if [ "$QUICK" -eq 0 ]; then
    stage "tier-1 tests (mixed-precision lane)" stage_tier1_mixed
    stage "full workspace tests" stage_workspace_tests
    stage "rustfmt check" stage_fmt
    stage "kernel bench + perf gate" stage_bench_kernels
    stage "solver bench + perf gate" stage_bench_solver
    stage "batch bench + perf gate" stage_bench_batch
    stage "RunReport schema smoke-run" stage_report_schema
    stage "serve bench + perf gate" stage_bench_serve
fi
# both --quick and --no-smoke skip the network-dependent smoke stages;
# otherwise each runs in a child shell under a 10-minute timeout with one
# retry, so a wedged socket cannot stall the workflow job
if [ "$RUN_SMOKE" -eq 1 ]; then
    stage "networked serve smoke-run" retry_stage 2 600 stage_net_smoke
    stage "multi-process launch smoke-run" retry_stage 2 600 stage_proc_smoke
fi

echo
echo "stage timings:"
for i in "${!STAGE_NAMES[@]}"; do
    printf '  %-32s %4ss\n' "${STAGE_NAMES[$i]}" "${STAGE_SECS[$i]}"
done
write_stage_timings
echo "stage timings written to ci_stages.json"
if [ "$QUICK" -eq 1 ]; then
    echo "CI gate passed (--quick: build + tier-1 tests + clippy)."
else
    echo "CI gate passed."
fi
