#!/usr/bin/env bash
# Tier-1 CI gate: build, tests, lints, formatting, and a kernel bench
# smoke-run that refreshes BENCH_kernels.json (per-kernel ns/grid-point at
# 64³/128³, threads 1 vs. max — see crates/bench/src/bin/bench_kernels.rs).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build =="
cargo build --release --workspace

echo "== tier-1 tests (root package) =="
cargo test -q --release

echo "== full workspace tests =="
cargo test -q --release --workspace

echo "== clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== rustfmt check =="
cargo fmt --all --check

echo "== kernel bench smoke-run =="
cargo run --release -p claire-bench --bin bench_kernels

echo "== observability smoke-run: quickstart --report =="
report="$(mktemp -d)/run.json"
cargo run --release --example quickstart -- 16 --report "$report"
echo "validating RunReport schema keys in $report"
for key in label grid nranks nt precond summary scheduling phases gn_trace \
           kernels comm collectives metrics spans; do
    grep -q "\"$key\"" "$report" || { echo "RunReport missing key: $key"; exit 1; }
done
grep -q '"name": "solve"' "$report" || { echo "RunReport span tree missing solve root"; exit 1; }
rm -f "$report"

echo "== serve bench smoke-run: open-loop load + bounded-queue backpressure =="
serve_json="$(mktemp -d)/BENCH_serve.json"
cargo run --release -p claire-bench --bin bench_serve -- "$serve_json" --smoke
echo "validating BENCH_serve schema keys in $serve_json"
for key in host_threads smoke calibration_run_secs levels overload \
           workers queue_capacity offered_rate_hz submitted completed rejected \
           throughput_jobs_per_s p50_ms p95_ms p99_ms accepted; do
    grep -q "\"$key\"" "$serve_json" || { echo "BENCH_serve missing key: $key"; exit 1; }
done
rm -f "$serve_json"

echo "CI gate passed."
